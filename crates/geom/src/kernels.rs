//! Batched geometry kernels over structure-of-arrays rectangle sets.
//!
//! The NWC best-first search is bound by `MINDIST` evaluations over
//! branch MBRs, and window descent by rectangle-intersection tests —
//! both evaluated per branch of every visited node. This module
//! provides the same two predicates as data-parallel kernels over a
//! [`MbrSoa`]: four contiguous coordinate arrays (`min_x`, `min_y`,
//! `max_x`, `max_y`) instead of an array of [`Rect`] structs, so one
//! kernel call prunes a whole node.
//!
//! Two implementations sit behind one dispatch:
//!
//! - a **portable** path written as chunked lane-width-4 loops over
//!   fixed-size arrays, which LLVM autovectorizes on stable Rust;
//! - an **AVX2** path (x86_64 only, runtime-detected) using 4-wide
//!   `f64` intrinsics.
//!
//! Both are **bit-identical** to the scalar [`Rect::mindist`] /
//! [`Rect::intersects`] on the finite coordinates the index admits: the
//! kernels use the exact same operation sequence (`sub`, `max`, `mul`,
//! `add`, `sqrt` — all correctly rounded, never fused into FMA), so
//! swapping kernels can never change an answer or a traversal order.
//! `tests/kernel_equivalence.rs` proves this property over the paper's
//! query shapes, extreme coordinates and remainder lanes.
//!
//! Set `NWC_KERNELS=portable` in the environment to pin the portable
//! path (e.g. to A/B the dispatch); [`kernel_backend`] reports what the
//! dispatch resolved to.

use crate::{Point, Rect};
use std::sync::atomic::{AtomicU8, Ordering};

/// Lane width of the portable kernels. Four `f64`s = one AVX2 register;
/// narrower SIMD ISAs simply split each chunk into more instructions.
const LANES: usize = 4;

/// A structure-of-arrays set of rectangles: the coordinate layout the
/// batched kernels consume. Built once (e.g. at page-decode time) and
/// queried many times.
#[derive(Clone, Debug, Default)]
pub struct MbrSoa {
    min_x: Vec<f64>,
    min_y: Vec<f64>,
    max_x: Vec<f64>,
    max_y: Vec<f64>,
}

impl MbrSoa {
    /// An empty set with room for `n` rectangles.
    pub fn with_capacity(n: usize) -> Self {
        MbrSoa {
            min_x: Vec::with_capacity(n),
            min_y: Vec::with_capacity(n),
            max_x: Vec::with_capacity(n),
            max_y: Vec::with_capacity(n),
        }
    }

    /// Appends one rectangle.
    pub fn push(&mut self, r: &Rect) {
        self.min_x.push(r.min.x);
        self.min_y.push(r.min.y);
        self.max_x.push(r.max.x);
        self.max_y.push(r.max.y);
    }

    /// Number of rectangles in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.min_x.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min_x.is_empty()
    }

    /// The min-x column, for callers driving the free kernels directly.
    #[inline]
    pub fn min_xs(&self) -> &[f64] {
        &self.min_x
    }

    /// The min-y column.
    #[inline]
    pub fn min_ys(&self) -> &[f64] {
        &self.min_y
    }

    /// The max-x column.
    #[inline]
    pub fn max_xs(&self) -> &[f64] {
        &self.max_x
    }

    /// The max-y column.
    #[inline]
    pub fn max_ys(&self) -> &[f64] {
        &self.max_y
    }

    /// The `i`-th rectangle, reassembled (tests and diagnostics).
    pub fn rect(&self, i: usize) -> Rect {
        Rect::new(
            Point::new(self.min_x[i], self.min_y[i]),
            Point::new(self.max_x[i], self.max_y[i]),
        )
    }

    /// `MINDIST(q, rect)` for every rectangle, written into `out`
    /// (which must hold at least [`MbrSoa::len`] values).
    #[inline]
    pub fn mindist_into(&self, q: &Point, out: &mut [f64]) {
        mindist_batch(&self.min_x, &self.min_y, &self.max_x, &self.max_y, q, out);
    }

    /// As [`MbrSoa::mindist_into`] over the sub-range
    /// `[start, start + out.len())`.
    #[inline]
    pub fn mindist_range_into(&self, start: usize, q: &Point, out: &mut [f64]) {
        let end = start + out.len();
        mindist_batch(
            &self.min_x[start..end],
            &self.min_y[start..end],
            &self.max_x[start..end],
            &self.max_y[start..end],
            q,
            out,
        );
    }

    /// Closed-rectangle intersection with the window `w` for every
    /// rectangle, written into `out` (at least [`MbrSoa::len`] values).
    #[inline]
    pub fn intersects_into(&self, w: &Rect, out: &mut [bool]) {
        intersects_window_batch(&self.min_x, &self.min_y, &self.max_x, &self.max_y, w, out);
    }

    /// As [`MbrSoa::intersects_into`] over the sub-range
    /// `[start, start + out.len())`.
    #[inline]
    pub fn intersects_range_into(&self, start: usize, w: &Rect, out: &mut [bool]) {
        let end = start + out.len();
        intersects_window_batch(
            &self.min_x[start..end],
            &self.min_y[start..end],
            &self.max_x[start..end],
            &self.max_y[start..end],
            w,
            out,
        );
    }
}

impl FromIterator<Rect> for MbrSoa {
    fn from_iter<I: IntoIterator<Item = Rect>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut soa = MbrSoa::with_capacity(iter.size_hint().0);
        for r in iter {
            soa.push(&r);
        }
        soa
    }
}

// ---------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------

/// Cached dispatch decision: 0 = undecided, 1 = AVX2, 2 = portable.
static BACKEND: AtomicU8 = AtomicU8::new(0);

#[inline]
fn backend() -> u8 {
    match BACKEND.load(Ordering::Relaxed) {
        0 => {
            let choice = detect_backend();
            BACKEND.store(choice, Ordering::Relaxed);
            choice
        }
        b => b,
    }
}

#[cold]
fn detect_backend() -> u8 {
    if matches!(
        std::env::var("NWC_KERNELS").as_deref(),
        Ok("portable") | Ok("scalar")
    ) {
        return 2;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return 1;
        }
    }
    2
}

/// The kernel implementation the runtime dispatch resolved to:
/// `"avx2"` or `"portable"`. Recorded by the kernels experiment so runs
/// on different hardware stay comparable.
pub fn kernel_backend() -> &'static str {
    match backend() {
        1 => "avx2",
        _ => "portable",
    }
}

/// `MINDIST(q, rect_i)` for each rectangle `i` of a structure-of-arrays
/// set. All five slices must have equal lengths (`out` may be longer;
/// only the first `min_x.len()` values are written).
///
/// Bit-identical to calling [`Rect::mindist`] per rectangle on finite
/// coordinates (see the module docs).
pub fn mindist_batch(
    min_x: &[f64],
    min_y: &[f64],
    max_x: &[f64],
    max_y: &[f64],
    q: &Point,
    out: &mut [f64],
) {
    let n = min_x.len();
    debug_assert!(min_y.len() == n && max_x.len() == n && max_y.len() == n && out.len() >= n);
    #[cfg(target_arch = "x86_64")]
    if backend() == 1 {
        avx2::mindist_batch(min_x, min_y, max_x, max_y, q, out);
        return;
    }
    portable_mindist(min_x, min_y, max_x, max_y, q, out);
}

/// Whether each rectangle of a structure-of-arrays set intersects the
/// (closed) window `w`. Same slice-length contract as
/// [`mindist_batch`]; bit-identical to [`Rect::intersects`].
pub fn intersects_window_batch(
    min_x: &[f64],
    min_y: &[f64],
    max_x: &[f64],
    max_y: &[f64],
    w: &Rect,
    out: &mut [bool],
) {
    let n = min_x.len();
    debug_assert!(min_y.len() == n && max_x.len() == n && max_y.len() == n && out.len() >= n);
    #[cfg(target_arch = "x86_64")]
    if backend() == 1 {
        avx2::intersects_batch(min_x, min_y, max_x, max_y, w, out);
        return;
    }
    portable_intersects(min_x, min_y, max_x, max_y, w, out);
}

// ---------------------------------------------------------------------
// Portable lane-width-4 kernels (autovectorized on stable Rust)
// ---------------------------------------------------------------------

/// One `MINDIST` lane: the exact operation sequence of
/// [`Rect::mindist2`] followed by `sqrt`, kept in a single `#[inline]`
/// function so every path (portable chunk, portable remainder, tests)
/// shares it.
#[inline(always)]
fn mindist_lane(min_x: f64, min_y: f64, max_x: f64, max_y: f64, q: &Point) -> f64 {
    let dx = (min_x - q.x).max(0.0).max(q.x - max_x);
    let dy = (min_y - q.y).max(0.0).max(q.y - max_y);
    (dx * dx + dy * dy).sqrt()
}

fn portable_mindist(
    min_x: &[f64],
    min_y: &[f64],
    max_x: &[f64],
    max_y: &[f64],
    q: &Point,
    out: &mut [f64],
) {
    let n = min_x.len();
    let chunks = n / LANES;
    // Fixed-width inner loops over array chunks: the trip count is a
    // compile-time constant and the slices are bounds-checked once per
    // chunk, which is the shape LLVM's autovectorizer reliably turns
    // into SIMD on stable Rust.
    for c in 0..chunks {
        let base = c * LANES;
        let mnx: &[f64; LANES] = min_x[base..base + LANES].try_into().expect("chunk width");
        let mny: &[f64; LANES] = min_y[base..base + LANES].try_into().expect("chunk width");
        let mxx: &[f64; LANES] = max_x[base..base + LANES].try_into().expect("chunk width");
        let mxy: &[f64; LANES] = max_y[base..base + LANES].try_into().expect("chunk width");
        let o: &mut [f64; LANES] = (&mut out[base..base + LANES]).try_into().expect("chunk width");
        for l in 0..LANES {
            o[l] = mindist_lane(mnx[l], mny[l], mxx[l], mxy[l], q);
        }
    }
    for i in chunks * LANES..n {
        out[i] = mindist_lane(min_x[i], min_y[i], max_x[i], max_y[i], q);
    }
}

/// One intersection lane: the exact comparison of [`Rect::intersects`]
/// with `self` = the rectangle and `other` = the window.
#[inline(always)]
fn intersects_lane(min_x: f64, min_y: f64, max_x: f64, max_y: f64, w: &Rect) -> bool {
    min_x <= w.max.x && w.min.x <= max_x && min_y <= w.max.y && w.min.y <= max_y
}

fn portable_intersects(
    min_x: &[f64],
    min_y: &[f64],
    max_x: &[f64],
    max_y: &[f64],
    w: &Rect,
    out: &mut [bool],
) {
    let n = min_x.len();
    let chunks = n / LANES;
    for c in 0..chunks {
        let base = c * LANES;
        let mnx: &[f64; LANES] = min_x[base..base + LANES].try_into().expect("chunk width");
        let mny: &[f64; LANES] = min_y[base..base + LANES].try_into().expect("chunk width");
        let mxx: &[f64; LANES] = max_x[base..base + LANES].try_into().expect("chunk width");
        let mxy: &[f64; LANES] = max_y[base..base + LANES].try_into().expect("chunk width");
        let o: &mut [bool; LANES] =
            (&mut out[base..base + LANES]).try_into().expect("chunk width");
        for l in 0..LANES {
            o[l] = intersects_lane(mnx[l], mny[l], mxx[l], mxy[l], w);
        }
    }
    for i in chunks * LANES..n {
        out[i] = intersects_lane(min_x[i], min_y[i], max_x[i], max_y[i], w);
    }
}

// ---------------------------------------------------------------------
// AVX2 kernels (x86_64, runtime-detected)
// ---------------------------------------------------------------------

/// The one `unsafe` island of the crate: 4-wide `f64` intrinsics. The
/// operation sequence mirrors the portable lanes exactly — separate
/// `mul`/`add` (never FMA) and the correctly-rounded `sqrt`/`max`, so
/// results stay bit-identical on the finite inputs the index admits.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx2 {
    use super::{intersects_lane, mindist_lane, LANES};
    use crate::{Point, Rect};
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_and_pd, _mm256_cmp_pd, _mm256_loadu_pd, _mm256_max_pd,
        _mm256_movemask_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_setzero_pd, _mm256_sqrt_pd,
        _mm256_storeu_pd, _mm256_sub_pd, _CMP_LE_OQ,
    };

    /// Safe entry point: asserts the dispatch contract (AVX2 verified
    /// at runtime) and forwards to the `#[target_feature]` body.
    pub(super) fn mindist_batch(
        min_x: &[f64],
        min_y: &[f64],
        max_x: &[f64],
        max_y: &[f64],
        q: &Point,
        out: &mut [f64],
    ) {
        debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
        // SAFETY: the dispatch in `backend()` only selects this path
        // after `is_x86_feature_detected!("avx2")` returned true.
        unsafe { mindist_batch_avx2(min_x, min_y, max_x, max_y, q, out) }
    }

    /// # Safety
    ///
    /// Caller must have verified AVX2 support at runtime. Slice lengths
    /// follow the contract of [`super::mindist_batch`].
    #[target_feature(enable = "avx2")]
    unsafe fn mindist_batch_avx2(
        min_x: &[f64],
        min_y: &[f64],
        max_x: &[f64],
        max_y: &[f64],
        q: &Point,
        out: &mut [f64],
    ) {
        let n = min_x.len();
        let chunks = n / LANES;
        let qx = _mm256_set1_pd(q.x);
        let qy = _mm256_set1_pd(q.y);
        let zero = _mm256_setzero_pd();
        for c in 0..chunks {
            let base = c * LANES;
            // SAFETY: base + LANES <= n for every chunk index.
            let mnx = unsafe { _mm256_loadu_pd(min_x.as_ptr().add(base)) };
            let mny = unsafe { _mm256_loadu_pd(min_y.as_ptr().add(base)) };
            let mxx = unsafe { _mm256_loadu_pd(max_x.as_ptr().add(base)) };
            let mxy = unsafe { _mm256_loadu_pd(max_y.as_ptr().add(base)) };
            // dx = max(max(min_x - qx, 0), qx - max_x); dy likewise.
            // max_pd picks lane-wise maxima exactly like f64::max on the
            // NaN-free inputs the tree admits.
            let dx = _mm256_max_pd(
                _mm256_max_pd(_mm256_sub_pd(mnx, qx), zero),
                _mm256_sub_pd(qx, mxx),
            );
            let dy = _mm256_max_pd(
                _mm256_max_pd(_mm256_sub_pd(mny, qy), zero),
                _mm256_sub_pd(qy, mxy),
            );
            let d2 = _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
            // SAFETY: same in-bounds argument as the loads.
            unsafe { _mm256_storeu_pd(out.as_mut_ptr().add(base), _mm256_sqrt_pd(d2)) };
        }
        for i in chunks * LANES..n {
            out[i] = mindist_lane(min_x[i], min_y[i], max_x[i], max_y[i], q);
        }
    }

    /// Safe entry point: asserts the dispatch contract (AVX2 verified
    /// at runtime) and forwards to the `#[target_feature]` body.
    pub(super) fn intersects_batch(
        min_x: &[f64],
        min_y: &[f64],
        max_x: &[f64],
        max_y: &[f64],
        w: &Rect,
        out: &mut [bool],
    ) {
        debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
        // SAFETY: the dispatch in `backend()` only selects this path
        // after `is_x86_feature_detected!("avx2")` returned true.
        unsafe { intersects_batch_avx2(min_x, min_y, max_x, max_y, w, out) }
    }

    /// # Safety
    ///
    /// Caller must have verified AVX2 support at runtime. Slice lengths
    /// follow the contract of [`super::intersects_window_batch`].
    #[target_feature(enable = "avx2")]
    unsafe fn intersects_batch_avx2(
        min_x: &[f64],
        min_y: &[f64],
        max_x: &[f64],
        max_y: &[f64],
        w: &Rect,
        out: &mut [bool],
    ) {
        let n = min_x.len();
        let chunks = n / LANES;
        let wminx = _mm256_set1_pd(w.min.x);
        let wminy = _mm256_set1_pd(w.min.y);
        let wmaxx = _mm256_set1_pd(w.max.x);
        let wmaxy = _mm256_set1_pd(w.max.y);
        for c in 0..chunks {
            let base = c * LANES;
            // SAFETY: base + LANES <= n for every chunk index.
            let mnx = unsafe { _mm256_loadu_pd(min_x.as_ptr().add(base)) };
            let mny = unsafe { _mm256_loadu_pd(min_y.as_ptr().add(base)) };
            let mxx = unsafe { _mm256_loadu_pd(max_x.as_ptr().add(base)) };
            let mxy = unsafe { _mm256_loadu_pd(max_y.as_ptr().add(base)) };
            // Closed-interval overlap on both axes, `<=` throughout —
            // ordered comparisons, false on NaN, matching `f64::le`.
            let x_ok = _mm256_and_pd(
                _mm256_cmp_pd::<_CMP_LE_OQ>(mnx, wmaxx),
                _mm256_cmp_pd::<_CMP_LE_OQ>(wminx, mxx),
            );
            let y_ok = _mm256_and_pd(
                _mm256_cmp_pd::<_CMP_LE_OQ>(mny, wmaxy),
                _mm256_cmp_pd::<_CMP_LE_OQ>(wminy, mxy),
            );
            let mask = _mm256_movemask_pd(_mm256_and_pd(x_ok, y_ok));
            for l in 0..LANES {
                out[base + l] = mask & (1 << l) != 0;
            }
        }
        for i in chunks * LANES..n {
            out[i] = intersects_lane(min_x[i], min_y[i], max_x[i], max_y[i], w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect;

    fn sample_soa(n: usize) -> MbrSoa {
        (0..n)
            .map(|i| {
                let x = ((i * 37) % 997) as f64 - 300.0;
                let y = ((i * 61) % 991) as f64 - 150.0;
                rect(x, y, x + ((i % 13) as f64), y + ((i % 7) as f64))
            })
            .collect()
    }

    #[test]
    fn mindist_matches_scalar_every_length() {
        let q = Point::new(123.5, -42.25);
        for n in 0..=19 {
            let soa = sample_soa(n);
            let mut out = vec![0.0f64; n];
            soa.mindist_into(&q, &mut out);
            for (i, got) in out.iter().enumerate() {
                let want = soa.rect(i).mindist(&q);
                assert_eq!(got.to_bits(), want.to_bits(), "lane {i} of {n}");
            }
        }
    }

    #[test]
    fn intersects_matches_scalar_every_length() {
        let w = rect(-10.0, -10.0, 350.0, 410.0);
        for n in 0..=19 {
            let soa = sample_soa(n);
            let mut out = vec![false; n];
            soa.intersects_into(&w, &mut out);
            for (i, &got) in out.iter().enumerate() {
                assert_eq!(got, soa.rect(i).intersects(&w), "lane {i} of {n}");
            }
        }
    }

    #[test]
    fn range_kernels_match_full_kernels() {
        let q = Point::new(5.0, 7.0);
        let w = rect(0.0, 0.0, 100.0, 100.0);
        let soa = sample_soa(23);
        let mut full_d = vec![0.0f64; 23];
        let mut full_i = vec![false; 23];
        soa.mindist_into(&q, &mut full_d);
        soa.intersects_into(&w, &mut full_i);
        let mut part_d = vec![0.0f64; 9];
        let mut part_i = vec![false; 9];
        soa.mindist_range_into(7, &q, &mut part_d);
        soa.intersects_range_into(7, &w, &mut part_i);
        assert_eq!(&full_d[7..16], &part_d[..]);
        assert_eq!(&full_i[7..16], &part_i[..]);
    }

    #[test]
    fn touching_boundary_is_inside() {
        // Lemma 1 cases: the window edge touches the rectangle exactly.
        let mut soa = MbrSoa::default();
        soa.push(&rect(5.0, 5.0, 9.0, 9.0));
        soa.push(&rect(9.0 + f64::EPSILON * 16.0, 5.0, 12.0, 9.0));
        let w = rect(0.0, 0.0, 5.0, 5.0); // corner-touches the first only
        let mut out = [false; 2];
        soa.intersects_into(&w, &mut out);
        assert_eq!(out, [true, false]);
        let mut d = [0.0f64; 2];
        soa.mindist_into(&Point::new(5.0, 5.0), &mut d);
        assert_eq!(d[0], 0.0, "touching point has MINDIST 0");
    }

    #[test]
    fn backend_reports_a_known_name() {
        assert!(matches!(kernel_backend(), "avx2" | "portable"));
    }
}
