//! The density grid behind density-based pruning (DEP, paper §3.3.3).
//!
//! The object space is divided into a `g × g` grid and each cell stores
//! the number of objects inside it. DEP then upper-bounds the number of
//! objects inside any rectangle by summing the cells the rectangle
//! intersects — if the bound is below the query's `n`, no window inside
//! the rectangle can be qualified, so index nodes can be pruned and
//! window queries cancelled without touching the R\*-tree.
//!
//! The paper's default is a cell size of 25 in the normalized
//! `10,000 × 10,000` space (a `400 × 400` grid, ~312 KB at 2 bytes per
//! cell); Figure 9 sweeps the cell size from 25 to 400.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod weight;

pub use weight::WeightGrid;

use nwc_geom::{Point, Rect};

/// A `g × g` count grid over a bounded object space.
#[derive(Clone, Debug)]
pub struct DensityGrid {
    bounds: Rect,
    cells_per_side: usize,
    cell_w: f64,
    cell_h: f64,
    counts: Vec<u32>,
    total: usize,
}

impl DensityGrid {
    /// Builds a grid with `cells_per_side × cells_per_side` cells over
    /// `bounds`, counting `points`.
    ///
    /// Points outside `bounds` are clamped into the border cells, keeping
    /// the grid's counts a valid upper bound for rectangles clipped to
    /// the bounds (the generators in `nwc-datagen` already clamp, so this
    /// is belt-and-braces).
    ///
    /// # Panics
    ///
    /// Panics when `cells_per_side == 0` or `bounds` is degenerate.
    pub fn build(bounds: Rect, cells_per_side: usize, points: &[Point]) -> Self {
        assert!(cells_per_side > 0, "grid needs at least one cell");
        assert!(
            bounds.width() > 0.0 && bounds.height() > 0.0,
            "grid bounds must have positive area"
        );
        let mut grid = DensityGrid {
            bounds,
            cells_per_side,
            cell_w: bounds.width() / cells_per_side as f64,
            cell_h: bounds.height() / cells_per_side as f64,
            counts: vec![0; cells_per_side * cells_per_side],
            total: points.len(),
        };
        for p in points {
            let (cx, cy) = grid.cell_of(p);
            grid.counts[cy * cells_per_side + cx] += 1;
        }
        grid
    }

    /// Builds a grid whose cells are `cell_size × cell_size` (the paper's
    /// parameterization: "the grid cell size is set to 25"). The number
    /// of cells per side is `⌈side / cell_size⌉` over the wider axis.
    pub fn from_cell_size(bounds: Rect, cell_size: f64, points: &[Point]) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        let side = bounds.width().max(bounds.height());
        let cells = (side / cell_size).ceil().max(1.0) as usize;
        DensityGrid::build(bounds, cells, points)
    }

    /// The grid's spatial bounds.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Cells per side (`g`).
    pub fn cells_per_side(&self) -> usize {
        self.cells_per_side
    }

    /// Total number of cells (`g²`).
    pub fn cell_count(&self) -> usize {
        self.counts.len()
    }

    /// Total number of counted objects.
    pub fn total_objects(&self) -> usize {
        self.total
    }

    /// Storage overhead at the paper's accounting of one short integer
    /// (2 bytes) per cell.
    pub fn bytes(&self) -> usize {
        self.cell_count() * 2
    }

    /// The cell indices containing point `p` (clamped into the grid).
    fn cell_of(&self, p: &Point) -> (usize, usize) {
        let cx = ((p.x - self.bounds.min.x) / self.cell_w).floor() as i64;
        let cy = ((p.y - self.bounds.min.y) / self.cell_h).floor() as i64;
        let max = self.cells_per_side as i64 - 1;
        (cx.clamp(0, max) as usize, cy.clamp(0, max) as usize)
    }

    /// Upper bound on the number of objects inside the (closed)
    /// rectangle `rect`: the sum of counts of every cell intersecting it
    /// (paper Algorithm 2).
    ///
    /// The bound is *safe*: it never undercounts, because every object in
    /// `rect` lies in some intersecting cell. It may overcount objects in
    /// partially-covered border cells — a finer grid tightens it, which
    /// is exactly the trade-off Figure 9 measures.
    pub fn count_upper_bound(&self, rect: &Rect) -> usize {
        // No early-out for rects beyond the bounds: points outside the
        // bounds are clamped into border cells at registration, so such
        // rects must still see the border-cell counts to stay an upper
        // bound (this matters after dynamic inserts outside the
        // original space).
        let g = self.cells_per_side;
        let max = g as i64 - 1;
        let lo_x = (((rect.min.x - self.bounds.min.x) / self.cell_w).floor() as i64).clamp(0, max)
            as usize;
        let hi_x = (((rect.max.x - self.bounds.min.x) / self.cell_w).floor() as i64).clamp(0, max)
            as usize;
        let lo_y = (((rect.min.y - self.bounds.min.y) / self.cell_h).floor() as i64).clamp(0, max)
            as usize;
        let hi_y = (((rect.max.y - self.bounds.min.y) / self.cell_h).floor() as i64).clamp(0, max)
            as usize;
        let mut sum = 0usize;
        for cy in lo_y..=hi_y {
            let row = &self.counts[cy * g + lo_x..=cy * g + hi_x];
            sum += row.iter().map(|&c| c as usize).sum::<usize>();
        }
        sum
    }

    /// Raw count of one cell, for inspection and rendering (`(col, row)`
    /// with the origin at the bounds' bottom-left corner).
    pub fn cell(&self, col: usize, row: usize) -> u32 {
        self.counts[row * self.cells_per_side + col]
    }

    /// Registers one more object at `p` (dynamic datasets). Points
    /// outside the bounds clamp into border cells, as at build time.
    pub fn add_point(&mut self, p: &Point) {
        let (cx, cy) = self.cell_of(p);
        self.counts[cy * self.cells_per_side + cx] += 1;
        self.total += 1;
    }

    /// Unregisters one object at `p`.
    ///
    /// # Panics
    ///
    /// Panics when the cell containing `p` has no objects recorded —
    /// removing a point that was never added corrupts the upper-bound
    /// guarantee, so it is refused loudly.
    pub fn remove_point(&mut self, p: &Point) {
        let (cx, cy) = self.cell_of(p);
        let slot = &mut self.counts[cy * self.cells_per_side + cx];
        assert!(*slot > 0, "removing {p:?} from an empty grid cell");
        *slot -= 1;
        self.total -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwc_geom::{pt, rect};

    fn space() -> Rect {
        rect(0.0, 0.0, 100.0, 100.0)
    }

    fn scatter() -> Vec<Point> {
        (0..500)
            .map(|i| pt(((i * 37) % 1000) as f64 / 10.0, ((i * 73) % 1000) as f64 / 10.0))
            .collect()
    }

    #[test]
    fn total_preserved() {
        let pts = scatter();
        let g = DensityGrid::build(space(), 10, &pts);
        assert_eq!(g.total_objects(), 500);
        assert_eq!(g.count_upper_bound(&space()), 500);
    }

    #[test]
    fn upper_bound_is_safe() {
        let pts = scatter();
        for cells in [1usize, 3, 10, 40, 100] {
            let g = DensityGrid::build(space(), cells, &pts);
            for i in 0..50 {
                let x = ((i * 13) % 90) as f64;
                let y = ((i * 31) % 90) as f64;
                let r = rect(x, y, x + ((i % 7) + 1) as f64, y + ((i % 5) + 1) as f64);
                let actual = pts.iter().filter(|p| r.contains_point(p)).count();
                let bound = g.count_upper_bound(&r);
                assert!(
                    bound >= actual,
                    "grid {cells}: bound {bound} < actual {actual} for {r:?}"
                );
            }
        }
    }

    #[test]
    fn finer_grids_are_tighter() {
        let pts = scatter();
        let coarse = DensityGrid::build(space(), 4, &pts);
        let fine = DensityGrid::build(space(), 100, &pts);
        let r = rect(10.0, 10.0, 12.0, 12.0);
        assert!(fine.count_upper_bound(&r) <= coarse.count_upper_bound(&r));
    }

    #[test]
    fn rect_outside_bounds_sees_border_cells() {
        // Out-of-bounds rects clamp onto the border cells, because
        // out-of-bounds points are clamped there at registration — the
        // bound must stay safe for them. With no points near the border
        // the bound is 0; with border mass it reflects it.
        let g = DensityGrid::build(space(), 10, &[pt(50.0, 50.0)]);
        assert_eq!(g.count_upper_bound(&rect(200.0, 200.0, 300.0, 300.0)), 0);
        let mut g2 = g.clone();
        g2.add_point(&pt(250.0, 250.0)); // clamped into cell (9, 9)
        assert_eq!(g2.count_upper_bound(&rect(200.0, 200.0, 300.0, 300.0)), 1);
    }

    #[test]
    fn rect_straddling_bounds_clamps() {
        let pts = vec![pt(0.5, 0.5), pt(99.5, 99.5)];
        let g = DensityGrid::build(space(), 10, &pts);
        assert_eq!(g.count_upper_bound(&rect(-50.0, -50.0, 5.0, 5.0)), 1);
        assert_eq!(g.count_upper_bound(&rect(95.0, 95.0, 500.0, 500.0)), 1);
    }

    #[test]
    fn boundary_points_counted_once() {
        let pts = vec![pt(50.0, 50.0), pt(10.0, 50.0), pt(50.0, 10.0)];
        let g = DensityGrid::build(space(), 10, &pts);
        assert_eq!(g.count_upper_bound(&space()), 3);
    }

    #[test]
    fn top_edge_points_clamped_into_grid() {
        let pts = vec![pt(100.0, 100.0)];
        let g = DensityGrid::build(space(), 10, &pts);
        assert_eq!(g.cell(9, 9), 1);
        assert_eq!(g.count_upper_bound(&rect(99.0, 99.0, 100.0, 100.0)), 1);
    }

    #[test]
    fn from_cell_size_matches_paper_config() {
        // Cell size 25 in a 10,000-wide space ⇒ 400 × 400 = 160,000 cells
        // ⇒ ~312 KB at 2 bytes/cell, as reported in §5.2.
        let bounds = rect(0.0, 0.0, 10_000.0, 10_000.0);
        let g = DensityGrid::from_cell_size(bounds, 25.0, &[]);
        assert_eq!(g.cells_per_side(), 400);
        assert_eq!(g.cell_count(), 160_000);
        assert_eq!(g.bytes(), 320_000);
    }

    #[test]
    #[should_panic]
    fn zero_cells_rejected() {
        DensityGrid::build(space(), 0, &[]);
    }
}
