//! Weighted density grid: per-cell *weight sums* instead of counts.
//!
//! The weighted NWC extension qualifies a window when the total weight
//! of its objects reaches a threshold `W` (seats across restaurants,
//! shelf space across shops, …). DEP pruning then needs an upper bound
//! on the weight inside a rectangle; this is the [`DensityGrid`]
//! (`crate::DensityGrid`) with `f64` sums.

use nwc_geom::{Point, Rect};

/// A `g × g` weight-sum grid over a bounded object space.
#[derive(Clone, Debug)]
pub struct WeightGrid {
    bounds: Rect,
    cells_per_side: usize,
    cell_w: f64,
    cell_h: f64,
    sums: Vec<f64>,
    total: f64,
}

impl WeightGrid {
    /// Builds a grid from parallel point/weight slices.
    ///
    /// # Panics
    ///
    /// Panics when the slices' lengths differ, a weight is negative or
    /// non-finite, `cells_per_side == 0`, or `bounds` is degenerate.
    pub fn build(bounds: Rect, cells_per_side: usize, points: &[Point], weights: &[f64]) -> Self {
        assert_eq!(points.len(), weights.len(), "points/weights length mismatch");
        assert!(cells_per_side > 0, "grid needs at least one cell");
        assert!(
            bounds.width() > 0.0 && bounds.height() > 0.0,
            "grid bounds must have positive area"
        );
        let mut grid = WeightGrid {
            bounds,
            cells_per_side,
            cell_w: bounds.width() / cells_per_side as f64,
            cell_h: bounds.height() / cells_per_side as f64,
            sums: vec![0.0; cells_per_side * cells_per_side],
            total: 0.0,
        };
        for (p, &w) in points.iter().zip(weights) {
            assert!(w >= 0.0 && w.is_finite(), "weights must be finite and ≥ 0, got {w}");
            let (cx, cy) = grid.cell_of(p);
            grid.sums[cy * cells_per_side + cx] += w;
            grid.total += w;
        }
        grid
    }

    /// Builds with `cell_size × cell_size` cells, mirroring
    /// [`DensityGrid::from_cell_size`](crate::DensityGrid::from_cell_size).
    pub fn from_cell_size(bounds: Rect, cell_size: f64, points: &[Point], weights: &[f64]) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        let side = bounds.width().max(bounds.height());
        let cells = (side / cell_size).ceil().max(1.0) as usize;
        WeightGrid::build(bounds, cells, points, weights)
    }

    /// Total weight of all registered objects.
    pub fn total_weight(&self) -> f64 {
        self.total
    }

    /// Cells per side.
    pub fn cells_per_side(&self) -> usize {
        self.cells_per_side
    }

    fn cell_of(&self, p: &Point) -> (usize, usize) {
        let cx = ((p.x - self.bounds.min.x) / self.cell_w).floor() as i64;
        let cy = ((p.y - self.bounds.min.y) / self.cell_h).floor() as i64;
        let max = self.cells_per_side as i64 - 1;
        (cx.clamp(0, max) as usize, cy.clamp(0, max) as usize)
    }

    /// Upper bound on the total weight inside the (closed) rectangle:
    /// the sum over every intersecting cell. Never undercounts.
    pub fn weight_upper_bound(&self, rect: &Rect) -> f64 {
        // No early-out beyond the bounds: clamped border-cell mass must
        // remain visible (see DensityGrid::count_upper_bound).
        let g = self.cells_per_side;
        let max = g as i64 - 1;
        let clamp = |v: f64, cell: f64, origin: f64| {
            (((v - origin) / cell).floor() as i64).clamp(0, max) as usize
        };
        let lo_x = clamp(rect.min.x, self.cell_w, self.bounds.min.x);
        let hi_x = clamp(rect.max.x, self.cell_w, self.bounds.min.x);
        let lo_y = clamp(rect.min.y, self.cell_h, self.bounds.min.y);
        let hi_y = clamp(rect.max.y, self.cell_h, self.bounds.min.y);
        let mut sum = 0.0;
        for cy in lo_y..=hi_y {
            sum += self.sums[cy * g + lo_x..=cy * g + hi_x].iter().sum::<f64>();
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwc_geom::{pt, rect};

    fn space() -> Rect {
        rect(0.0, 0.0, 100.0, 100.0)
    }

    #[test]
    fn totals_and_bounds() {
        let pts = vec![pt(10.0, 10.0), pt(50.0, 50.0), pt(90.0, 90.0)];
        let ws = vec![1.5, 2.5, 4.0];
        let g = WeightGrid::build(space(), 10, &pts, &ws);
        assert_eq!(g.total_weight(), 8.0);
        assert_eq!(g.weight_upper_bound(&space()), 8.0);
        assert!(g.weight_upper_bound(&rect(0.0, 0.0, 20.0, 20.0)) >= 1.5);
        // Beyond-bounds rects clamp onto border cells (which are empty
        // on that side here).
        assert_eq!(g.weight_upper_bound(&rect(200.0, 0.0, 300.0, 10.0)), 0.0);
    }

    #[test]
    fn bound_is_safe() {
        let pts: Vec<_> = (0..200)
            .map(|i| pt(((i * 37) % 100) as f64, ((i * 53) % 100) as f64))
            .collect();
        let ws: Vec<f64> = (0..200).map(|i| (i % 5) as f64 * 0.5).collect();
        let g = WeightGrid::build(space(), 7, &pts, &ws);
        for i in 0..30 {
            let x = ((i * 11) % 80) as f64;
            let y = ((i * 17) % 80) as f64;
            let r = rect(x, y, x + 15.0, y + 10.0);
            let actual: f64 = pts
                .iter()
                .zip(&ws)
                .filter(|(p, _)| r.contains_point(p))
                .map(|(_, &w)| w)
                .sum();
            assert!(g.weight_upper_bound(&r) >= actual - 1e-9);
        }
    }

    #[test]
    #[should_panic]
    fn negative_weight_rejected() {
        WeightGrid::build(space(), 4, &[pt(1.0, 1.0)], &[-1.0]);
    }

    #[test]
    #[should_panic]
    fn length_mismatch_rejected() {
        WeightGrid::build(space(), 4, &[pt(1.0, 1.0)], &[1.0, 2.0]);
    }
}
