//! The Maximizing Range Sum (MaxRS) baseline (Choi, Chung & Tao,
//! PVLDB 2012) — the closest prior problem the paper positions NWC
//! against (§2.2): *"the MaxRS problem does not consider any query
//! location and thus is naturally different from the proposed NWC
//! query"*.
//!
//! Given a window size `l × w`, MaxRS finds the window position covering
//! the maximum number of objects, anywhere in space. Implementing it
//! alongside NWC lets examples and benchmarks demonstrate the
//! difference: MaxRS returns the globally densest area; NWC returns the
//! *nearest sufficiently dense* one.
//!
//! # Algorithm
//!
//! The classic transformation: a window with min-corner `(x₀, y₀)`
//! contains object `p` iff `x₀ ∈ [x_p − l, x_p]` and
//! `y₀ ∈ [y_p − w, y_p]`, i.e. the min-corner lies in a rectangle dual
//! to `p`. MaxRS thus reduces to *max-depth over axis-aligned
//! rectangles*, solved by a plane sweep over `x` with a segment tree of
//! `+1`/`−1` interval updates over compressed `y` coordinates —
//! `O(N log N)`.

use nwc_geom::{window::WindowSpec, Point, Rect};

/// The result of a MaxRS computation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MaxRsResult {
    /// Maximum number of objects any `l × w` window can cover.
    pub count: usize,
    /// A window achieving it (min-corner placement from the sweep).
    pub window: Rect,
}

/// Computes MaxRS exactly over `points` for the given window size.
///
/// Returns `None` for an empty input. Ties are broken by the sweep
/// order (the leftmost-lowest maximizing placement is reported).
pub fn maxrs(points: &[Point], spec: &WindowSpec) -> Option<MaxRsResult> {
    if points.is_empty() {
        return None;
    }
    // Compressed y-interval endpoints: each object contributes the dual
    // interval [y_p − w, y_p].
    let mut ys: Vec<f64> = Vec::with_capacity(points.len() * 2);
    for p in points {
        ys.push(p.y - spec.w);
        ys.push(p.y);
    }
    ys.sort_by(f64::total_cmp);
    ys.dedup();
    let index_of = |y: f64| ys.partition_point(|&v| v < y);

    // Segment tree over the compressed y *points* (the max depth over
    // closed dual rectangles is attained at an event coordinate, so
    // point-depths suffice), with lazy additive interval updates.
    let segs = ys.len();
    let mut st = SegTree::new(segs);

    // Sweep events over x: +1 at x_p − l, −1 just after x_p.
    #[derive(Clone, Copy)]
    struct Event {
        x: f64,
        add: i32,
        lo: usize, // y-segment range [lo, hi) of the dual interval
        hi: usize,
    }
    let mut events: Vec<Event> = Vec::with_capacity(points.len() * 2);
    for p in points {
        let lo = index_of(p.y - spec.w);
        let hi = index_of(p.y) + 1; // half-open over point indices
        events.push(Event {
            x: p.x - spec.l,
            add: 1,
            lo,
            hi,
        });
        events.push(Event {
            x: p.x,
            add: -1,
            lo,
            hi,
        });
    }
    events.sort_by(|a, b| a.x.total_cmp(&b.x).then_with(|| b.add.cmp(&a.add)));

    // At each distinct x: apply the opens, measure (the closed dual
    // rectangles ending exactly at x still count there), then apply the
    // closes.
    let mut best = 0i32;
    let mut best_corner = Point::new(points[0].x - spec.l, points[0].y - spec.w);
    let mut i = 0usize;
    while i < events.len() {
        let x = events[i].x;
        let mut closes_start = i;
        while closes_start < events.len()
            && events[closes_start].x == x
            && events[closes_start].add > 0
        {
            let e = events[closes_start];
            st.add(e.lo, e.hi, e.add);
            closes_start += 1;
        }
        let (depth, seg) = st.max_with_pos();
        if depth > best {
            best = depth;
            best_corner = Point::new(x, ys[seg]);
        }
        let mut j = closes_start;
        while j < events.len() && events[j].x == x {
            let e = events[j];
            st.add(e.lo, e.hi, e.add);
            j += 1;
        }
        i = j;
    }
    Some(MaxRsResult {
        count: best.max(0) as usize,
        window: Rect::new(
            best_corner,
            Point::new(best_corner.x + spec.l, best_corner.y + spec.w),
        ),
    })
}

/// Brute-force MaxRS over canonical placements (right/top edges on
/// object coordinates) — `O(N³)`, for testing.
pub fn maxrs_brute_force(points: &[Point], spec: &WindowSpec) -> Option<MaxRsResult> {
    if points.is_empty() {
        return None;
    }
    let mut best: Option<MaxRsResult> = None;
    for a in points {
        for b in points {
            let win = Rect::new(
                Point::new(a.x - spec.l, b.y - spec.w),
                Point::new(a.x, b.y),
            );
            let count = points.iter().filter(|p| win.contains_point(p)).count();
            if best.as_ref().is_none_or(|r| count > r.count) {
                best = Some(MaxRsResult { count, window: win });
            }
        }
    }
    best
}

/// Max-segment tree with lazy additive updates.
struct SegTree {
    n: usize,
    max: Vec<i32>,
    lazy: Vec<i32>,
    /// Leftmost leaf index achieving the subtree max.
    arg: Vec<usize>,
}

impl SegTree {
    fn new(n: usize) -> Self {
        let mut arg = vec![0usize; 4 * n];
        Self::init_args(&mut arg, 1, 0, n - 1);
        SegTree {
            n,
            max: vec![0; 4 * n],
            lazy: vec![0; 4 * n],
            arg,
        }
    }

    fn init_args(arg: &mut [usize], node: usize, lo: usize, hi: usize) {
        if lo == hi {
            arg[node] = lo;
            return;
        }
        let mid = (lo + hi) / 2;
        Self::init_args(arg, node * 2, lo, mid);
        Self::init_args(arg, node * 2 + 1, mid + 1, hi);
        arg[node] = arg[node * 2];
    }

    /// Adds `v` over the segment range `[lo, hi)`.
    fn add(&mut self, lo: usize, hi: usize, v: i32) {
        debug_assert!(lo < hi && hi <= self.n);
        self.add_rec(1, 0, self.n - 1, lo, hi - 1, v);
    }

    fn add_rec(&mut self, node: usize, nlo: usize, nhi: usize, lo: usize, hi: usize, v: i32) {
        if lo <= nlo && nhi <= hi {
            self.max[node] += v;
            self.lazy[node] += v;
            return;
        }
        let mid = (nlo + nhi) / 2;
        if lo <= mid {
            self.add_rec(node * 2, nlo, mid, lo, hi.min(mid), v);
        }
        if hi > mid {
            self.add_rec(node * 2 + 1, mid + 1, nhi, lo.max(mid + 1), hi, v);
        }
        let (l, r) = (node * 2, node * 2 + 1);
        if self.max[l] >= self.max[r] {
            self.max[node] = self.max[l] + self.lazy[node];
            self.arg[node] = self.arg[l];
        } else {
            self.max[node] = self.max[r] + self.lazy[node];
            self.arg[node] = self.arg[r];
        }
    }

    /// Global maximum and a leaf achieving it.
    fn max_with_pos(&self) -> (i32, usize) {
        (self.max[1], self.arg[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwc_geom::pt;

    #[test]
    fn empty_input() {
        assert!(maxrs(&[], &WindowSpec::square(5.0)).is_none());
    }

    #[test]
    fn single_point() {
        let r = maxrs(&[pt(3.0, 4.0)], &WindowSpec::square(2.0)).unwrap();
        assert_eq!(r.count, 1);
        assert!(r.window.contains_point(&pt(3.0, 4.0)));
    }

    #[test]
    fn dense_cluster_beats_scatter() {
        let mut pts = vec![pt(50.0, 50.0), pt(51.0, 51.0), pt(52.0, 50.5), pt(50.5, 52.0)];
        pts.extend([pt(0.0, 0.0), pt(100.0, 0.0), pt(0.0, 100.0)]);
        let r = maxrs(&pts, &WindowSpec::square(4.0)).unwrap();
        assert_eq!(r.count, 4);
        for p in &pts[..4] {
            assert!(r.window.contains_point(p), "{p:?} outside {:?}", r.window);
        }
    }

    #[test]
    fn matches_brute_force_on_grids() {
        for (seed, n) in [(1u64, 20usize), (2, 45), (3, 70)] {
            let pts: Vec<Point> = (0..n)
                .map(|i| {
                    let v = i as u64 * 2654435761 + seed * 97;
                    pt((v % 40) as f64, ((v / 40) % 40) as f64)
                })
                .collect();
            for size in [3.0, 7.5, 15.0] {
                let spec = WindowSpec::square(size);
                let fast = maxrs(&pts, &spec).unwrap();
                let slow = maxrs_brute_force(&pts, &spec).unwrap();
                assert_eq!(fast.count, slow.count, "seed {seed} n {n} size {size}");
                // The returned window must actually achieve the count.
                let achieved = pts.iter().filter(|p| fast.window.contains_point(p)).count();
                assert_eq!(achieved, fast.count, "reported window does not achieve count");
            }
        }
    }

    #[test]
    fn collinear_points() {
        let pts: Vec<Point> = (0..10).map(|i| pt(i as f64, 5.0)).collect();
        let r = maxrs(&pts, &WindowSpec::new(4.0, 1.0)).unwrap();
        assert_eq!(r.count, 5); // closed window [x, x+4] covers 5 integers
    }

    #[test]
    fn duplicate_points_counted() {
        let pts = vec![pt(1.0, 1.0); 7];
        let r = maxrs(&pts, &WindowSpec::square(0.5)).unwrap();
        assert_eq!(r.count, 7);
    }
}
