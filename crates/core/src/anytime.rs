//! Anytime/budgeted and `(1+ε)`-approximate query results.
//!
//! The exact query APIs treat every resource limit as a hard failure: a
//! missed deadline is [`QueryError::Deadline`] and the caller gets
//! nothing, even though the best-first search had usually found a
//! near-optimal group long before the budget ran out. The anytime APIs
//! (`NwcIndex::try_nwc_anytime*`, `NwcIndex::try_knwc_anytime*`, and
//! their engine/shard counterparts) instead stop cooperatively and
//! return the **best answer so far together with a proven quality
//! bound**:
//!
//! - The best-first frontier pops items in ascending key; every group
//!   the search has not yet covered is anchored at an object still at
//!   or behind the frontier (`dist(q, p) >= key`), and its discovery
//!   window is an `l × w` rectangle containing that anchor, so its
//!   score is at least `key - diagonal(l, w)` (one extra diagonal for
//!   the `NearestWindow` measure, whose minimizing window may slide
//!   one window-size further) — see [`frontier_slack`]. The heap key
//!   at the stopping point therefore yields a sound lower bound for
//!   free.
//! - In `(1+ε)` mode the pruning thresholds shrink by `1/(1+ε)`
//!   ([`Approx`]), so anything pruned had score at least
//!   `dist_best/(1+ε)` at prune time; since `dist_best` only improves,
//!   the final answer is within `(1+ε)` of the exact optimum.
//!
//! Combining the two certificates: the exact optimum `d*` satisfies
//! `d* >= min(max(0, frontier_key - slack), answer/(1+ε))` —
//! [`AnytimeNwc::lower_bound`].
//! The absolute gap `answer - lower_bound` is
//! [`AnytimeNwc::error_bound`]; it is `0` for a completed exact search
//! and `+inf` when the budget expired before any group was found.
//!
//! With `ε = 0` and an unarmed [`Budget`](nwc_rtree::Budget) the
//! anytime path runs the exact search loop unchanged — answers *and*
//! logical I/O are bit-identical to the exact APIs (asserted by
//! `tests/oracle_equivalence.rs`).

use crate::knwc::KnwcResult;
use crate::measure::DistanceMeasure;
use crate::query::QueryError;
use crate::result::{NwcResult, SearchStats};
use nwc_geom::window::WindowSpec;
use nwc_rtree::CancelKind;

/// `(1+ε)`-approximation mode for the anytime query APIs.
///
/// The factor shrinks every distance-driven pruning threshold
/// (SRR/DIP and the kNWC k-th-score bound) by `1/(1+ε)`, letting the
/// search discard regions that could only improve the answer by less
/// than a factor of `(1+ε)`. `ε = 0` ([`Approx::exact`]) multiplies
/// thresholds by exactly `1.0`, which is the identity on every finite
/// score — the exact path, bit for bit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Approx {
    epsilon: f64,
    shrink: f64,
}

impl Approx {
    /// Exact mode: `ε = 0`, thresholds untouched.
    pub fn exact() -> Self {
        Approx {
            epsilon: 0.0,
            shrink: 1.0,
        }
    }

    /// `(1+ε)` mode. Rejects NaN, infinite, and negative `ε` with
    /// [`QueryError::InvalidEpsilon`].
    pub fn new(epsilon: f64) -> Result<Self, QueryError> {
        if !epsilon.is_finite() || epsilon < 0.0 {
            return Err(QueryError::InvalidEpsilon);
        }
        if epsilon == 0.0 {
            return Ok(Approx::exact());
        }
        Ok(Approx {
            epsilon,
            shrink: 1.0 / (1.0 + epsilon),
        })
    }

    /// The configured `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The threshold inflation factor `1/(1+ε)` (1.0 in exact mode).
    pub(crate) fn shrink(&self) -> f64 {
        self.shrink
    }
}

impl Default for Approx {
    fn default() -> Self {
        Approx::exact()
    }
}

/// What a budgeted search actually spent before returning.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BudgetSpent {
    /// Wall-clock microseconds from entering the search to returning.
    pub elapsed_us: u64,
    /// Logical node accesses charged by the searching thread(s).
    pub io: u64,
}

/// The outcome of a budgeted/approximate NWC search: the best group
/// found so far plus a proven bracket on the exact optimum.
///
/// Invariants (asserted against the brute-force oracle by the test
/// suites): `lower_bound <= d* <= answer.distance` whenever `answer`
/// is `Some` (where `d*` is the exact optimum score), hence
/// `answer.distance <= d* + error_bound` and `error_bound >= 0`.
#[derive(Clone, Debug)]
pub struct AnytimeNwc {
    /// The best group found within the budget (`None` when none was
    /// found yet — always accompanied by an infinite `error_bound`
    /// unless the search completed).
    pub answer: Option<NwcResult>,
    /// What the search did up to the stopping point.
    pub stats: SearchStats,
    /// Proven lower bound on the exact optimum score:
    /// `min(max(0, frontier_key - slack), answer/(1+ε))` — see
    /// [`frontier_slack`]. `+inf` when a completed exact search found
    /// nothing (no group exists at all).
    pub lower_bound: f64,
    /// `answer.distance - lower_bound`, clamped at 0. `0` for a
    /// completed exact search; `+inf` when the budget expired before
    /// any group was found.
    pub error_bound: f64,
    /// What the search spent.
    pub spent: BudgetSpent,
    /// Why the search stopped early, or `None` when it ran the
    /// frontier dry (a complete — possibly `(1+ε)`-approximate —
    /// answer).
    pub exhausted: Option<CancelKind>,
}

impl AnytimeNwc {
    /// Whether the search covered the whole frontier (the answer is
    /// exact for `ε = 0`, `(1+ε)`-approximate otherwise).
    pub fn is_complete(&self) -> bool {
        self.exhausted.is_none()
    }

    /// Whether the budget expired mid-search (a best-so-far answer).
    pub fn is_partial(&self) -> bool {
        self.exhausted.is_some()
    }
}

/// The outcome of a budgeted/approximate kNWC search.
///
/// The bound brackets the *k-th selected* score: every group the
/// pruned greedy selection would still have accepted scores at least
/// `lower_bound`, and when `k` groups were found the k-th score is
/// within `error_bound` of the best possible k-th score. (The pruned
/// kNWC inherits the paper's §3.4 caveat — see `knwc`'s module docs —
/// so the bound is relative to the pruned-greedy semantics the exact
/// API implements.)
#[derive(Clone, Debug)]
pub struct AnytimeKnwc {
    /// Groups found within the budget, plus search statistics.
    pub result: KnwcResult,
    /// Proven lower bound on every undiscovered candidate's score.
    pub lower_bound: f64,
    /// Quality gap of the k-th score (`+inf` when fewer than `k`
    /// groups were found before the budget expired; `0` for a
    /// completed exact search).
    pub error_bound: f64,
    /// What the search spent.
    pub spent: BudgetSpent,
    /// Why the search stopped early (`None` = frontier drained).
    pub exhausted: Option<CancelKind>,
}

impl AnytimeKnwc {
    /// Whether the search covered the whole frontier.
    pub fn is_complete(&self) -> bool {
        self.exhausted.is_none()
    }

    /// Whether the budget expired mid-search.
    pub fn is_partial(&self) -> bool {
        self.exhausted.is_some()
    }
}

/// The slack between the best-first frontier key and the score of a
/// group anchored behind it.
///
/// An uncovered group is anchored at an unvisited object `p` with
/// `dist(q, p) >= key`; every member of the group lies in an `l × w`
/// window containing `p`, hence within `diagonal(l, w)` of `p`, so for
/// the `Min`/`Max`/`Avg` measures its score is at least
/// `key - diagonal`. The `NearestWindow` measure minimizes `MINDIST`
/// over *every* window containing the group, which can slide up to one
/// more window size toward `q` — two diagonals of slack.
pub fn frontier_slack(measure: DistanceMeasure, spec: &WindowSpec) -> f64 {
    match measure {
        DistanceMeasure::NearestWindow => 2.0 * spec.diagonal(),
        _ => spec.diagonal(),
    }
}

/// Converts a raw frontier key into a sound score lower bound by
/// subtracting the window slack (clamped at zero; infinite keys — a
/// drained frontier — stay infinite).
pub(crate) fn frontier_lower_bound(frontier_key: f64, slack: f64) -> f64 {
    if frontier_key.is_finite() {
        (frontier_key - slack).max(0.0)
    } else {
        frontier_key
    }
}

/// Combines the two stop certificates into one sound lower bound on
/// the exact optimum: anything pruned scored at least `best * shrink`
/// (the `(1+ε)` certificate), anything not yet covered scored at least
/// `frontier` (the slack-adjusted best-first certificate, see
/// [`frontier_lower_bound`]).
pub(crate) fn combine_lower_bound(best: f64, shrink: f64, frontier: f64) -> f64 {
    (best * shrink).min(frontier)
}

/// Absolute quality gap for a best score and its lower bound: `0` when
/// nothing was found because nothing exists (both infinite), `+inf`
/// when the search stopped before finding anything, else the clamped
/// difference.
pub(crate) fn gap(best: f64, lower_bound: f64) -> f64 {
    if best.is_finite() {
        (best - lower_bound).max(0.0)
    } else if lower_bound.is_finite() {
        f64::INFINITY
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_validation() {
        assert!(Approx::new(f64::NAN).is_err());
        assert!(Approx::new(f64::INFINITY).is_err());
        assert!(Approx::new(-0.5).is_err());
        assert_eq!(Approx::new(0.0).unwrap(), Approx::exact());
        let a = Approx::new(0.25).unwrap();
        assert_eq!(a.epsilon(), 0.25);
        assert!((a.shrink() - 0.8).abs() < 1e-15);
    }

    #[test]
    fn exact_shrink_is_the_identity_bitwise() {
        let a = Approx::exact();
        for x in [0.0, 1.5, 1e300, f64::INFINITY] {
            assert_eq!((x * a.shrink()).to_bits(), x.to_bits());
        }
    }

    #[test]
    fn bound_arithmetic_covers_every_stop_state() {
        // Complete exact search with an answer: zero gap.
        let lb = combine_lower_bound(5.0, 1.0, f64::INFINITY);
        assert_eq!(lb, 5.0);
        assert_eq!(gap(5.0, lb), 0.0);
        // Complete (1+ε) search: the ε certificate decides.
        let lb = combine_lower_bound(5.0, 0.8, f64::INFINITY);
        assert_eq!(lb, 4.0);
        assert!((gap(5.0, lb) - 1.0).abs() < 1e-12);
        // Exhausted with a shallow frontier: the frontier decides.
        let lb = combine_lower_bound(5.0, 1.0, 2.0);
        assert_eq!(lb, 2.0);
        assert_eq!(gap(5.0, lb), 3.0);
        // Exhausted before anything was found: unbounded gap.
        let lb = combine_lower_bound(f64::INFINITY, 1.0, 2.0);
        assert_eq!(lb, 2.0);
        assert_eq!(gap(f64::INFINITY, lb), f64::INFINITY);
        // Complete with nothing found: nothing exists, zero gap.
        let lb = combine_lower_bound(f64::INFINITY, 1.0, f64::INFINITY);
        assert_eq!(gap(f64::INFINITY, lb), 0.0);
    }

    #[test]
    fn frontier_slack_subtracts_the_window_diagonal() {
        let spec = WindowSpec { l: 3.0, w: 4.0 }; // diagonal 5
        assert_eq!(frontier_slack(DistanceMeasure::Max, &spec), 5.0);
        assert_eq!(frontier_slack(DistanceMeasure::Min, &spec), 5.0);
        assert_eq!(frontier_slack(DistanceMeasure::Avg, &spec), 5.0);
        assert_eq!(frontier_slack(DistanceMeasure::NearestWindow, &spec), 10.0);
        assert_eq!(frontier_lower_bound(12.0, 5.0), 7.0);
        assert_eq!(frontier_lower_bound(2.0, 5.0), 0.0); // clamped
        assert_eq!(frontier_lower_bound(f64::INFINITY, 5.0), f64::INFINITY);
    }

}
