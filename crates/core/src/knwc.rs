//! kNWC query processing (paper §3.4).
//!
//! A kNWC query returns `k` object groups of `n` objects each, ordered by
//! ascending distance, with at most `m` identical objects between any two
//! groups (Definition 3). The search reuses the NWC traversal; only the
//! sink differs.
//!
//! # Selection semantics
//!
//! The canonical Definition-3 answer is the *greedy* selection: walk
//! candidate groups in ascending distance and keep each group that
//! shares at most `m` objects with every group already kept. The paper's
//! incremental insertion procedure (§3.4 Steps 1–5) approximates this
//! but is order-sensitive: a late-arriving close group can evict a
//! selected group whose own earlier evictions are never reconsidered.
//! This implementation therefore *buffers* every offered candidate group
//! (deduplicated by object set) and maintains the greedy selection over
//! the buffer, which eliminates the cascade anomaly while keeping the
//! paper's pruning rule (SRR/DIP driven by the current k-th group
//! distance, §3.4).
//!
//! One theoretical caveat remains, inherited from the paper: pruning by
//! the current k-th distance can, in adversarial conflict structures,
//! discard a candidate that the final greedy selection would have used
//! (a close group may *conflict away* selected groups and raise the
//! k-th distance after the candidate was pruned). [`NwcIndex::knwc_exact`]
//! disables distance pruning entirely and is guaranteed to equal the
//! brute-force greedy answer; the experiments use the pruned variant,
//! exactly as the paper does.

use crate::candidates::GroupSink;
use crate::index::NwcIndex;
use crate::query::KnwcQuery;
use crate::result::SearchStats;
use crate::scratch::QueryScratch;
use nwc_geom::Rect;
use nwc_rtree::{Entry, ObjectId};

/// One group of a kNWC answer.
#[derive(Clone, Debug)]
pub struct KnwcGroup {
    /// The `n` objects, ordered by ascending distance to the query point.
    pub objects: Vec<Entry>,
    /// The group's score under the query's distance measure.
    pub distance: f64,
    /// The qualified window the group was discovered in.
    pub window: Rect,
}

impl KnwcGroup {
    /// The object ids of this group, sorted ascending (set identity).
    pub fn id_set(&self) -> Vec<ObjectId> {
        let mut ids: Vec<ObjectId> = self.objects.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids
    }
}

/// The answer to a kNWC query.
#[derive(Clone, Debug)]
pub struct KnwcResult {
    /// Up to `k` groups in ascending distance order. Fewer groups are
    /// returned when the dataset does not contain `k` compatible ones.
    pub groups: Vec<KnwcGroup>,
    /// What the search did.
    pub stats: SearchStats,
}

impl NwcIndex {
    /// Answers `kNWC(k, q, l, w, n, m)` under the given scheme, pruning
    /// with the current k-th group distance as §3.4 prescribes. The
    /// paper's experiments use `kNWC+` (= `Scheme::NWC_PLUS`) and `kNWC*`
    /// (= `Scheme::NWC_STAR`).
    pub fn knwc(&self, query: &KnwcQuery, scheme: crate::Scheme) -> KnwcResult {
        self.knwc_impl(query, scheme, true, &mut QueryScratch::default())
    }

    /// As [`NwcIndex::knwc`], reusing the buffers of `scratch` so a warm
    /// query's traversal performs no per-node or per-visited-object heap
    /// allocation (see [`QueryScratch`]). Results and I/O counts are
    /// identical to [`NwcIndex::knwc`].
    pub fn knwc_with(
        &self,
        query: &KnwcQuery,
        scheme: crate::Scheme,
        scratch: &mut QueryScratch,
    ) -> KnwcResult {
        self.knwc_impl(query, scheme, true, scratch)
    }

    /// As [`NwcIndex::knwc`], surfacing disk read failures as
    /// [`QueryError`](crate::QueryError) instead of panicking (see
    /// [`NwcIndex::try_nwc`]). On an error the index remains usable.
    pub fn try_knwc(
        &self,
        query: &KnwcQuery,
        scheme: crate::Scheme,
    ) -> Result<KnwcResult, crate::QueryError> {
        self.try_knwc_impl(
            query,
            scheme,
            true,
            &mut QueryScratch::default(),
            &nwc_rtree::CancelToken::none(),
        )
    }

    /// As [`NwcIndex::try_knwc`] with scratch reuse.
    pub fn try_knwc_with(
        &self,
        query: &KnwcQuery,
        scheme: crate::Scheme,
        scratch: &mut QueryScratch,
    ) -> Result<KnwcResult, crate::QueryError> {
        self.try_knwc_impl(query, scheme, true, scratch, &nwc_rtree::CancelToken::none())
    }

    /// As [`NwcIndex::try_knwc_with`], additionally observing a
    /// cooperative [`CancelToken`](nwc_rtree::CancelToken) — see
    /// [`NwcIndex::try_nwc_full_cancel`] for the cancellation contract.
    pub fn try_knwc_cancel(
        &self,
        query: &KnwcQuery,
        scheme: crate::Scheme,
        scratch: &mut QueryScratch,
        cancel: &nwc_rtree::CancelToken,
    ) -> Result<KnwcResult, crate::QueryError> {
        self.try_knwc_impl(query, scheme, true, scratch, cancel)
    }

    /// Anytime `kNWC`: runs until `budget` expires and returns the
    /// groups found so far with a proven quality bound (see
    /// [`AnytimeKnwc`](crate::AnytimeKnwc)) instead of erroring. With
    /// [`Approx::exact`](crate::Approx::exact) and
    /// [`Budget::none`](nwc_rtree::Budget::none) the groups and logical
    /// I/O are bit-identical to [`NwcIndex::try_knwc`].
    pub fn try_knwc_anytime(
        &self,
        query: &KnwcQuery,
        scheme: crate::Scheme,
        budget: &nwc_rtree::Budget,
        approx: crate::Approx,
    ) -> Result<crate::AnytimeKnwc, crate::QueryError> {
        self.try_knwc_anytime_with(query, scheme, &mut QueryScratch::default(), budget, approx)
    }

    /// As [`NwcIndex::try_knwc_anytime`] with scratch reuse.
    pub fn try_knwc_anytime_with(
        &self,
        query: &KnwcQuery,
        scheme: crate::Scheme,
        scratch: &mut QueryScratch,
        budget: &nwc_rtree::Budget,
        approx: crate::Approx,
    ) -> Result<crate::AnytimeKnwc, crate::QueryError> {
        let started = std::time::Instant::now();
        let io = self.tree().stats();
        let io0 = io.snapshot();
        let mut sink = GroupsSink {
            core: GroupsCore::approx(query.k, query.m, true, approx.shrink()),
            idbuf: std::mem::take(&mut scratch.ids),
        };
        let searched =
            self.try_run_search_budget(&query.base, scheme, &mut sink, scratch, budget);
        sink.idbuf.clear();
        scratch.ids = std::mem::take(&mut sink.idbuf);
        let (stats, end) = searched?;
        let spent = crate::BudgetSpent {
            elapsed_us: u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
            io: io.since(io0),
        };
        let groups = sink.core.groups();
        // The bound brackets the k-th selected score; with fewer than k
        // groups it is infinite unless the search completed (in which
        // case no k-th group exists at all and the gap is zero).
        let kth = if groups.len() == query.k {
            groups.last().map_or(f64::INFINITY, |g| g.distance)
        } else {
            f64::INFINITY
        };
        let (frontier_key, exhausted) = match end {
            crate::algo::SearchEnd::Complete => (f64::INFINITY, None),
            crate::algo::SearchEnd::Exhausted { kind, frontier } => (frontier, Some(kind)),
        };
        let slack = crate::anytime::frontier_slack(query.base.measure, &query.base.spec);
        let frontier = crate::anytime::frontier_lower_bound(frontier_key, slack);
        let lower_bound = crate::anytime::combine_lower_bound(kth, approx.shrink(), frontier);
        let error_bound = crate::anytime::gap(kth, lower_bound);
        Ok(crate::AnytimeKnwc {
            result: KnwcResult { groups, stats },
            lower_bound,
            error_bound,
            spent,
            exhausted,
        })
    }

    /// As [`NwcIndex::knwc`] but with distance pruning disabled: every
    /// qualified window is considered, so the answer is exactly the
    /// greedy Definition-3 selection (matching
    /// [`oracle::knwc_brute_force`](crate::oracle::knwc_brute_force)).
    /// DEP/IWP still apply if the scheme enables them — they never drop
    /// qualified windows.
    pub fn knwc_exact(&self, query: &KnwcQuery, scheme: crate::Scheme) -> KnwcResult {
        self.knwc_impl(query, scheme, false, &mut QueryScratch::default())
    }

    /// Fallible [`NwcIndex::knwc_exact`] with scratch reuse — the
    /// panic-free delegation target for the sharded planner's K = 1
    /// fast path.
    pub(crate) fn try_knwc_exact_with(
        &self,
        query: &KnwcQuery,
        scheme: crate::Scheme,
        scratch: &mut QueryScratch,
    ) -> Result<KnwcResult, crate::QueryError> {
        self.try_knwc_impl(query, scheme, false, scratch, &nwc_rtree::CancelToken::none())
    }

    /// Answers a kNWC query with the paper's §3.4 Steps 1–5 implemented
    /// *verbatim* (in-place insertion with eviction, no candidate
    /// buffer). Kept as an ablation reference: on typical workloads it
    /// matches [`NwcIndex::knwc`], but an eviction cascade can leave it
    /// with fewer/different groups (see the module docs), which is why
    /// the buffered variant is the default.
    pub fn knwc_paper_steps(&self, query: &KnwcQuery, scheme: crate::Scheme) -> KnwcResult {
        let mut sink = PaperStepsSink {
            k: query.k,
            m: query.m,
            groups: Vec::with_capacity(query.k),
        };
        let stats = self.run_search(&query.base, scheme, &mut sink);
        KnwcResult {
            groups: sink
                .groups
                .into_iter()
                .map(|g| KnwcGroup {
                    objects: g.entries,
                    distance: g.score,
                    window: g.window,
                })
                .collect(),
            stats,
        }
    }

    fn knwc_impl(
        &self,
        query: &KnwcQuery,
        scheme: crate::Scheme,
        prune: bool,
        scratch: &mut QueryScratch,
    ) -> KnwcResult {
        match self.try_knwc_impl(query, scheme, prune, scratch, &nwc_rtree::CancelToken::none()) {
            Ok(r) => r,
            Err(e) => crate::algo::unrecoverable(e),
        }
    }

    fn try_knwc_impl(
        &self,
        query: &KnwcQuery,
        scheme: crate::Scheme,
        prune: bool,
        scratch: &mut QueryScratch,
        cancel: &nwc_rtree::CancelToken,
    ) -> Result<KnwcResult, crate::QueryError> {
        // The sink borrows the scratch's id buffer for its set-identity
        // checks; the traversal buffers stay with the scratch. Returned
        // below so the capacity survives into the next query.
        let mut sink = GroupsSink {
            core: GroupsCore::new(query.k, query.m, prune),
            idbuf: std::mem::take(&mut scratch.ids),
        };
        let searched = self.try_run_search_cancel(&query.base, scheme, &mut sink, scratch, cancel);
        // Failed or not, the id buffer goes back to the scratch so its
        // capacity survives into the next query.
        sink.idbuf.clear();
        scratch.ids = std::mem::take(&mut sink.idbuf);
        let stats = searched?;
        Ok(KnwcResult {
            groups: sink.core.groups(),
            stats,
        })
    }
}

pub(crate) struct StoredGroup {
    pub(crate) ids: Vec<ObjectId>, // sorted — the group's set identity
    pub(crate) entries: Vec<Entry>,
    pub(crate) score: f64,
    pub(crate) window: Rect,
}

/// The buffered greedy top-k state, factored out of [`GroupsSink`] so
/// the sharded scatter-gather planner can share one instance (behind a
/// mutex) across every shard's traversal. Holds no scratch borrows —
/// callers pass the reusable sorted-id buffer into
/// [`GroupsCore::offer_group`].
pub(crate) struct GroupsCore {
    pub(crate) k: usize,
    pub(crate) m: usize,
    pub(crate) prune: bool,
    /// Pruning-threshold factor `1/(1+ε)`; `1.0` = exact. Only the
    /// §3.4 threshold shrinks — acceptance into the buffer stays exact,
    /// so the selection is the true greedy answer over everything the
    /// (relaxed) traversal actually offered.
    pub(crate) shrink: f64,
    /// All distinct offered groups, ascending by (score, ids).
    pub(crate) buffer: Vec<StoredGroup>,
    /// Indices into `buffer` forming the current greedy selection.
    pub(crate) selected: Vec<usize>,
}

impl GroupsCore {
    pub(crate) fn new(k: usize, m: usize, prune: bool) -> Self {
        GroupsCore::approx(k, m, prune, 1.0)
    }

    pub(crate) fn approx(k: usize, m: usize, prune: bool, shrink: f64) -> Self {
        GroupsCore {
            k,
            m,
            prune,
            shrink,
            buffer: Vec::new(),
            selected: Vec::new(),
        }
    }

    /// Recomputes the greedy selection: scan the buffer in ascending
    /// score order, keep groups compatible with everything kept so far,
    /// stop at k.
    fn reselect(&mut self) {
        self.selected.clear();
        for (i, cand) in self.buffer.iter().enumerate() {
            if self.selected.len() == self.k {
                break;
            }
            let ok = self
                .selected
                .iter()
                .all(|&s| overlap_count(&self.buffer[s].ids, &cand.ids) <= self.m);
            if ok {
                self.selected.push(i);
            }
        }
    }

    /// The §3.4 pruning bound, tie-inclusive: one ulp above the k-th
    /// selected score (∞ until k groups exist or when pruning is off).
    /// Tie-inclusion keeps equal-score groups discoverable so the
    /// canonical `(score, ids)` buffer order — not traversal order —
    /// decides the selection.
    pub(crate) fn threshold(&self) -> f64 {
        if !self.prune {
            return f64::INFINITY;
        }
        if self.selected.len() == self.k {
            let kth = self.buffer[*self.selected.last().unwrap()].score;
            crate::algo::tie_inclusive(kth * self.shrink)
        } else {
            f64::INFINITY
        }
    }

    /// Offers one candidate group. `idbuf` is the caller's reusable
    /// sorted-id buffer (left holding the group's sorted ids).
    pub(crate) fn offer_group(
        &mut self,
        group: Vec<Entry>,
        score: f64,
        window: Rect,
        idbuf: &mut Vec<ObjectId>,
        stats: &mut SearchStats,
    ) {
        // Fast reject: strictly beyond the k-th score cannot affect the
        // greedy selection; exact ties enter the buffer so the canonical
        // order decides.
        if self.prune && self.selected.len() == self.k {
            let kth = self.buffer[*self.selected.last().unwrap()].score;
            if score > kth {
                return;
            }
        }
        // Build the sorted id set in the reused buffer; only clone it
        // into owned storage when the group is actually kept.
        idbuf.clear();
        idbuf.extend(group.iter().map(|e| e.id));
        idbuf.sort_unstable();
        // Deduplicate by set identity (same place rediscovered through a
        // shifted window scores identically). An equal-(score, ids)
        // rediscovery through a different window keeps the canonically
        // smaller window, so the stored window is order-independent too.
        let pos = self
            .buffer
            .partition_point(|g| (g.score, &g.ids) < (score, &*idbuf));
        if let Some(g) = self.buffer.get_mut(pos) {
            if g.ids == *idbuf {
                if crate::algo::canonical_less(idbuf, &window, &g.ids, &g.window) {
                    g.entries = group;
                    g.window = window;
                }
                return;
            }
        }
        self.buffer.insert(
            pos,
            StoredGroup {
                ids: idbuf.clone(),
                entries: group,
                score,
                window,
            },
        );
        self.reselect();
        stats.best_updates += 1;
    }

    /// Materializes the current greedy selection as result groups.
    pub(crate) fn groups(&self) -> Vec<KnwcGroup> {
        self.selected
            .iter()
            .map(|&i| {
                let g = &self.buffer[i];
                KnwcGroup {
                    objects: g.entries.clone(),
                    distance: g.score,
                    window: g.window,
                }
            })
            .collect()
    }
}

/// Sink maintaining the greedy top-k selection over all offered groups.
struct GroupsSink {
    core: GroupsCore,
    /// Reused sorted-id buffer: duplicate offers (the common case near a
    /// hot window) are rejected without allocating.
    idbuf: Vec<ObjectId>,
}

impl GroupSink for GroupsSink {
    fn threshold(&self) -> f64 {
        self.core.threshold()
    }

    fn offer(&mut self, group: Vec<Entry>, score: f64, window: Rect, stats: &mut SearchStats) {
        self.core.offer_group(group, score, window, &mut self.idbuf, stats);
    }
}

/// The paper's §3.4 Steps 1–5 sink, verbatim (ablation reference).
struct PaperStepsSink {
    k: usize,
    m: usize,
    groups: Vec<StoredGroup>, // ascending by score
}

impl GroupSink for PaperStepsSink {
    fn threshold(&self) -> f64 {
        if self.groups.len() == self.k {
            self.groups.last().map_or(f64::INFINITY, |g| g.score)
        } else {
            f64::INFINITY
        }
    }

    fn offer(&mut self, group: Vec<Entry>, score: f64, window: Rect, stats: &mut SearchStats) {
        // Step 2 (i = k case): all k groups are closer — drop.
        if self.groups.len() == self.k && self.groups.last().is_some_and(|g| g.score <= score) {
            return;
        }
        let mut ids: Vec<ObjectId> = group.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        if self.groups.iter().any(|g| g.ids == ids) {
            return; // identical set rediscovered
        }
        // Step 2: i = number of strictly closer groups.
        let i = self.groups.partition_point(|g| g.score < score);
        // Step 3: compatibility with every closer group.
        if self.groups[..i]
            .iter()
            .any(|g| overlap_count(&g.ids, &ids) > self.m)
        {
            return;
        }
        // Step 4: evict the k-th group when full; insert at position i.
        if self.groups.len() == self.k {
            self.groups.pop();
        }
        self.groups.insert(
            i,
            StoredGroup {
                ids,
                entries: group,
                score,
                window,
            },
        );
        // Step 5: drop farther groups that conflict with the newcomer.
        let new_ids = self.groups[i].ids.clone();
        let mut j = i + 1;
        while j < self.groups.len() {
            if overlap_count(&self.groups[j].ids, &new_ids) > self.m {
                self.groups.remove(j);
            } else {
                j += 1;
            }
        }
        stats.best_updates += 1;
    }
}

/// `|a ∩ b|` for sorted id slices.
fn overlap_count(a: &[ObjectId], b: &[ObjectId]) -> usize {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KnwcQuery, Scheme, WindowSpec};
    use nwc_geom::pt;

    fn three_clusters() -> Vec<nwc_geom::Point> {
        let mut pts = Vec::new();
        for (cx, cy) in [(20.0, 20.0), (50.0, 50.0), (85.0, 85.0)] {
            for i in 0..4 {
                pts.push(pt(cx + (i % 2) as f64, cy + (i / 2) as f64));
            }
        }
        pts
    }

    #[test]
    fn overlap_count_works() {
        assert_eq!(overlap_count(&[1, 2, 3], &[2, 3, 4]), 2);
        assert_eq!(overlap_count(&[], &[1]), 0);
        assert_eq!(overlap_count(&[5, 9], &[1, 2, 3]), 0);
        assert_eq!(overlap_count(&[1, 2], &[1, 2]), 2);
    }

    #[test]
    fn returns_k_disjoint_groups_in_order() {
        let idx = NwcIndex::build(three_clusters());
        let query = KnwcQuery::new(pt(0.0, 0.0), WindowSpec::square(5.0), 3, 3, 0);
        for scheme in [Scheme::NWC_PLUS, Scheme::NWC_STAR] {
            let r = idx.knwc(&query, scheme);
            assert_eq!(r.groups.len(), 3, "{scheme}");
            let d: Vec<f64> = r.groups.iter().map(|g| g.distance).collect();
            assert!(d.windows(2).all(|w| w[0] <= w[1]), "{scheme}: {d:?}");
            for a in 0..3 {
                for b in a + 1..3 {
                    assert_eq!(
                        overlap_count(&r.groups[a].id_set(), &r.groups[b].id_set()),
                        0
                    );
                }
            }
            let firsts: Vec<f64> = r.groups.iter().map(|g| g.objects[0].point.x).collect();
            assert!(firsts[0] < 25.0 && firsts[1] < 55.0 && firsts[2] > 80.0);
        }
    }

    #[test]
    fn first_group_matches_nwc() {
        let idx = NwcIndex::build(three_clusters());
        let q = pt(47.0, 48.0);
        let spec = WindowSpec::square(5.0);
        let knwc = idx.knwc(&KnwcQuery::new(q, spec, 3, 2, 0), Scheme::NWC_STAR);
        let nwc = idx
            .nwc(&crate::NwcQuery::new(q, spec, 3), Scheme::NWC_STAR)
            .unwrap();
        assert!((knwc.groups[0].distance - nwc.distance).abs() < 1e-9);
    }

    #[test]
    fn m_allows_overlap() {
        // Five objects on a line: windows can slide to exclude either
        // endpoint, so with m = 3 two overlapping 4-groups exist; with
        // m = 0 only one does.
        let pts = vec![
            pt(10.0, 10.0),
            pt(11.0, 10.0),
            pt(12.0, 10.0),
            pt(13.0, 10.0),
            pt(14.5, 10.0),
        ];
        let idx = NwcIndex::build(pts);
        let strict = idx.knwc(
            &KnwcQuery::new(pt(0.0, 0.0), WindowSpec::square(4.0), 4, 2, 0),
            Scheme::NWC_STAR,
        );
        assert_eq!(strict.groups.len(), 1);
        let loose = idx.knwc(
            &KnwcQuery::new(pt(0.0, 0.0), WindowSpec::square(4.0), 4, 2, 3),
            Scheme::NWC_STAR,
        );
        assert_eq!(loose.groups.len(), 2);
        assert!(loose.groups[0].distance <= loose.groups[1].distance);
    }

    #[test]
    fn fewer_groups_than_k_when_data_runs_out() {
        let idx = NwcIndex::build(three_clusters());
        let query = KnwcQuery::new(pt(0.0, 0.0), WindowSpec::square(5.0), 4, 10, 0);
        let r = idx.knwc(&query, Scheme::NWC_STAR);
        assert_eq!(r.groups.len(), 3, "only three disjoint 4-groups exist");
    }

    #[test]
    fn no_duplicate_groups() {
        let idx = NwcIndex::build(three_clusters());
        let query = KnwcQuery::new(pt(30.0, 30.0), WindowSpec::square(6.0), 2, 8, 1);
        let r = idx.knwc(&query, Scheme::NWC_STAR);
        let sets: Vec<Vec<u32>> = r.groups.iter().map(|g| g.id_set()).collect();
        for a in 0..sets.len() {
            for b in a + 1..sets.len() {
                assert_ne!(sets[a], sets[b]);
            }
        }
    }

    #[test]
    fn paper_steps_variant_matches_on_well_separated_data() {
        // With spatially separated clusters there are no eviction
        // cascades, so Steps 1–5 and the buffered greedy agree exactly.
        let idx = NwcIndex::build(three_clusters());
        for (qx, qy) in [(0.0, 0.0), (50.0, 0.0), (90.0, 90.0)] {
            let query = KnwcQuery::new(pt(qx, qy), WindowSpec::square(5.0), 3, 3, 0);
            let buffered = idx.knwc(&query, Scheme::NWC_PLUS);
            let verbatim = idx.knwc_paper_steps(&query, Scheme::NWC_PLUS);
            assert_eq!(buffered.groups.len(), verbatim.groups.len());
            for (a, b) in buffered.groups.iter().zip(&verbatim.groups) {
                assert_eq!(a.id_set(), b.id_set());
            }
        }
    }

    #[test]
    fn exact_mode_matches_pruned_on_easy_data() {
        let idx = NwcIndex::build(three_clusters());
        let query = KnwcQuery::new(pt(10.0, 90.0), WindowSpec::square(5.0), 3, 3, 0);
        let pruned = idx.knwc(&query, Scheme::NWC_STAR);
        let exact = idx.knwc_exact(&query, Scheme::NWC);
        assert_eq!(pruned.groups.len(), exact.groups.len());
        for (a, b) in pruned.groups.iter().zip(&exact.groups) {
            assert!((a.distance - b.distance).abs() < 1e-9);
            assert_eq!(a.id_set(), b.id_set());
        }
        // Pruning must not cost more I/O than exhaustion.
        assert!(pruned.stats.io_total <= exact.stats.io_total);
    }
}
