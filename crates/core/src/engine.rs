//! Parallel batch query engine.
//!
//! An [`NwcIndex`] is immutable during querying and internally `Sync`
//! (the tree's I/O counters are relaxed atomics), so any number of
//! threads can answer queries over one shared index concurrently. The
//! [`QueryEngine`] packages that: it fans a batch of NWC or kNWC
//! queries out to scoped worker threads, each owning one
//! [`QueryScratch`] so every worker runs the zero-allocation warm path,
//! and returns results in input order.
//!
//! Work distribution is a single atomic cursor the workers pop from
//! (work stealing degenerates to this when tasks come from one queue):
//! expensive queries don't stall the batch behind a static partition.
//! Built entirely on `std::thread::scope` — no extra dependencies, no
//! `unsafe`.
//!
//! # Example
//!
//! ```
//! use nwc_core::{engine::QueryEngine, NwcIndex, NwcQuery, Scheme, WindowSpec};
//! use nwc_geom::pt;
//!
//! let pts: Vec<_> = (0..400)
//!     .map(|i| pt(((i * 37) % 101) as f64, ((i * 61) % 97) as f64))
//!     .collect();
//! let index = NwcIndex::build(pts);
//! let queries: Vec<_> = (0..8)
//!     .map(|i| NwcQuery::new(pt(i as f64 * 10.0, 50.0), WindowSpec::square(12.0), 4))
//!     .collect();
//!
//! let engine = QueryEngine::new(&index).with_threads(2);
//! let results = engine.nwc_batch(&queries, Scheme::NWC_STAR);
//! assert_eq!(results.len(), queries.len());
//! ```

use crate::anytime::{AnytimeKnwc, AnytimeNwc, Approx};
use crate::index::NwcIndex;
use crate::knwc::KnwcResult;
use crate::query::{KnwcQuery, NwcQuery, QueryError};
use crate::result::{NwcResult, SearchStats};
use crate::scheme::Scheme;
use crate::scratch::QueryScratch;
use nwc_rtree::{Budget, CancelToken};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Answers batches of NWC/kNWC queries over one shared index with a
/// pool of scoped worker threads. See the module docs.
#[derive(Clone, Copy)]
pub struct QueryEngine<'i> {
    index: &'i NwcIndex,
    threads: usize,
}

impl<'i> QueryEngine<'i> {
    /// An engine over `index` using one worker per available CPU
    /// (falling back to 1 when parallelism cannot be determined).
    pub fn new(index: &'i NwcIndex) -> Self {
        let threads = thread::available_parallelism().map_or(1, |n| n.get());
        QueryEngine { index, threads }
    }

    /// Sets the worker count. Zero is treated as one; a count above the
    /// batch size spawns only as many workers as there are queries.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The index this engine queries.
    pub fn index(&self) -> &'i NwcIndex {
        self.index
    }

    /// Answers every NWC query in `queries` under `scheme`, returning
    /// `(result, stats)` pairs in input order. Each pair is exactly what
    /// [`NwcIndex::nwc_full`] returns for the same query — results and
    /// attributed I/O counts are unaffected by batching, thread count,
    /// or scratch reuse (asserted by `tests/engine_equivalence.rs`).
    pub fn nwc_batch(
        &self,
        queries: &[NwcQuery],
        scheme: Scheme,
    ) -> Vec<(Option<NwcResult>, SearchStats)> {
        let index = self.index;
        self.run_batch(queries, move |q, scratch| {
            index.nwc_full_with(q, scheme, scratch)
        })
    }

    /// Answers every kNWC query in `queries` under `scheme`, returning
    /// results in input order (each what [`NwcIndex::knwc`] returns).
    pub fn knwc_batch(&self, queries: &[KnwcQuery], scheme: Scheme) -> Vec<KnwcResult> {
        let index = self.index;
        self.run_batch(queries, move |q, scratch| index.knwc_with(q, scheme, scratch))
    }

    /// As [`QueryEngine::nwc_batch`], collecting per-query disk read
    /// failures instead of panicking: a query that hits an unrecoverable
    /// page gets its own `Err` slot while every other query in the batch
    /// completes normally — one bad page never tears down the worker
    /// scope. Slots are in input order.
    pub fn try_nwc_batch(
        &self,
        queries: &[NwcQuery],
        scheme: Scheme,
    ) -> Vec<Result<(Option<NwcResult>, SearchStats), QueryError>> {
        let index = self.index;
        self.run_batch(queries, move |q, scratch| {
            index.try_nwc_full_with(q, scheme, scratch)
        })
    }

    /// As [`QueryEngine::knwc_batch`] with per-query error collection
    /// (see [`QueryEngine::try_nwc_batch`]).
    pub fn try_knwc_batch(
        &self,
        queries: &[KnwcQuery],
        scheme: Scheme,
    ) -> Vec<Result<KnwcResult, QueryError>> {
        let index = self.index;
        self.run_batch(queries, move |q, scratch| {
            index.try_knwc_with(q, scheme, scratch)
        })
    }

    /// As [`QueryEngine::try_nwc_batch`], additionally observing a
    /// cooperative [`CancelToken`]. Once the token fires, each query —
    /// in-flight or not yet started — stops at its next cancellation
    /// point and reports its own typed [`AnytimeNwc`] partial: the
    /// best-so-far answer it had at that moment with an individually
    /// valid `error_bound`, rather than one blanket error for the whole
    /// batch. Slots finished before the token fired are complete
    /// (`exhausted == None`) and bit-identical to
    /// [`QueryEngine::try_nwc_batch`]; `Err` slots are reserved for
    /// disk failures. The workers and the index stay fully usable.
    pub fn try_nwc_batch_cancel(
        &self,
        queries: &[NwcQuery],
        scheme: Scheme,
        cancel: &CancelToken,
    ) -> Vec<Result<AnytimeNwc, QueryError>> {
        self.try_nwc_batch_budget(queries, scheme, &Budget::from(cancel.clone()), Approx::exact())
    }

    /// As [`QueryEngine::try_nwc_batch_cancel`] with the full anytime
    /// contract: each query runs under `budget` (the wall-clock
    /// deadline and stop flag are shared; an I/O allowance applies to
    /// each query separately) in `(1+ε)` mode `approx`, and every slot
    /// reports its own [`AnytimeNwc`] with a per-query quality bound.
    pub fn try_nwc_batch_budget(
        &self,
        queries: &[NwcQuery],
        scheme: Scheme,
        budget: &Budget,
        approx: Approx,
    ) -> Vec<Result<AnytimeNwc, QueryError>> {
        let index = self.index;
        self.run_batch(queries, move |q, scratch| {
            index.try_nwc_anytime_with(q, scheme, scratch, budget, approx)
        })
    }

    /// As [`QueryEngine::try_knwc_batch`] with the per-query partial
    /// contract of [`QueryEngine::try_nwc_batch_cancel`].
    pub fn try_knwc_batch_cancel(
        &self,
        queries: &[KnwcQuery],
        scheme: Scheme,
        cancel: &CancelToken,
    ) -> Vec<Result<AnytimeKnwc, QueryError>> {
        self.try_knwc_batch_budget(queries, scheme, &Budget::from(cancel.clone()), Approx::exact())
    }

    /// As [`QueryEngine::try_nwc_batch_budget`] for kNWC queries.
    pub fn try_knwc_batch_budget(
        &self,
        queries: &[KnwcQuery],
        scheme: Scheme,
        budget: &Budget,
        approx: Approx,
    ) -> Vec<Result<AnytimeKnwc, QueryError>> {
        let index = self.index;
        self.run_batch(queries, move |q, scratch| {
            index.try_knwc_anytime_with(q, scheme, scratch, budget, approx)
        })
    }

    /// Shared batch driver: an atomic cursor hands out query indices,
    /// each worker owns one warm [`QueryScratch`], and per-worker
    /// `(index, result)` pairs are merged back into input order.
    fn run_batch<Q, R, F>(&self, queries: &[Q], run: F) -> Vec<R>
    where
        Q: Sync,
        R: Send,
        F: Fn(&Q, &mut QueryScratch) -> R + Sync,
    {
        scatter_map(self.threads, queries.len(), |i, scratch| {
            run(&queries[i], scratch)
        })
    }
}

/// The engine's scoped-thread work-distribution core, factored out so
/// the sharded scatter-gather planner ([`crate::shard`]) fans its
/// per-shard searches out through exactly the same machinery: an atomic
/// cursor hands out item indices `0..count`, each worker owns one
/// [`QueryScratch`], and results come back in index order.
///
/// With `workers <= 1` (or one item) this degenerates to a sequential
/// in-order loop over one scratch — fully deterministic, no threads
/// spawned.
pub(crate) fn scatter_map<R, F>(workers: usize, count: usize, run: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, &mut QueryScratch) -> R + Sync,
{
    let workers = workers.max(1).min(count);
    if workers <= 1 {
        // Sequential fast path: still one warm scratch for the batch.
        let mut scratch = QueryScratch::new();
        return (0..count).map(|i| run(i, &mut scratch)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut merged: Vec<(usize, R)> = Vec::with_capacity(count);
    thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut scratch = QueryScratch::new();
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        out.push((i, run(i, &mut scratch)));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            merged.extend(h.join().expect("query worker panicked"));
        }
    });
    merged.sort_unstable_by_key(|&(i, _)| i);
    merged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WindowSpec;
    use nwc_geom::pt;

    fn world() -> NwcIndex {
        let pts: Vec<_> = (0..600)
            .map(|i| pt(((i * 37) % 211) as f64, ((i * 53) % 197) as f64))
            .collect();
        NwcIndex::build(pts)
    }

    fn queries() -> Vec<NwcQuery> {
        (0..12)
            .map(|i| {
                NwcQuery::new(
                    pt((i * 17 % 200) as f64, (i * 29 % 190) as f64),
                    WindowSpec::square(14.0),
                    5,
                )
            })
            .collect()
    }

    #[test]
    fn batch_matches_sequential_api() {
        let idx = world();
        let qs = queries();
        let engine = QueryEngine::new(&idx).with_threads(4);
        let batch = engine.nwc_batch(&qs, Scheme::NWC_STAR);
        assert_eq!(batch.len(), qs.len());
        for (q, (got, stats)) in qs.iter().zip(&batch) {
            let (want, want_stats) = idx.nwc_full(q, Scheme::NWC_STAR);
            assert_eq!(*stats, want_stats);
            match (got, &want) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.ids(), b.ids());
                    assert!((a.distance - b.distance).abs() < 1e-12);
                }
                _ => panic!("batch/sequential disagreement"),
            }
        }
    }

    #[test]
    fn thread_counts_agree() {
        let idx = world();
        let qs = queries();
        let one = QueryEngine::new(&idx).with_threads(1).nwc_batch(&qs, Scheme::NWC_PLUS);
        let four = QueryEngine::new(&idx).with_threads(4).nwc_batch(&qs, Scheme::NWC_PLUS);
        for ((a, sa), (b, sb)) in one.iter().zip(&four) {
            assert_eq!(sa, sb);
            assert_eq!(a.as_ref().map(|r| r.ids()), b.as_ref().map(|r| r.ids()));
        }
    }

    #[test]
    fn knwc_batch_matches_sequential() {
        let idx = world();
        let qs: Vec<KnwcQuery> = (0..6)
            .map(|i| {
                KnwcQuery::new(
                    pt((i * 31 % 180) as f64, (i * 41 % 180) as f64),
                    WindowSpec::square(16.0),
                    3,
                    4,
                    1,
                )
            })
            .collect();
        let batch = QueryEngine::new(&idx).with_threads(3).knwc_batch(&qs, Scheme::NWC_STAR);
        for (q, got) in qs.iter().zip(&batch) {
            let want = idx.knwc(q, Scheme::NWC_STAR);
            assert_eq!(got.stats, want.stats);
            assert_eq!(got.groups.len(), want.groups.len());
            for (a, b) in got.groups.iter().zip(&want.groups) {
                assert_eq!(a.id_set(), b.id_set());
            }
        }
    }

    #[test]
    fn more_threads_than_queries() {
        let idx = world();
        let qs = queries()[..2].to_vec();
        let r = QueryEngine::new(&idx).with_threads(64).nwc_batch(&qs, Scheme::NWC);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn empty_batch() {
        let idx = world();
        let r = QueryEngine::new(&idx).nwc_batch(&[], Scheme::NWC_STAR);
        assert!(r.is_empty());
    }
}
