//! One unified observability snapshot over every stats surface.
//!
//! The stack already counts everything the paper (and a server) needs —
//! per-query [`SearchStats`], the tree's [`IoStats`](nwc_rtree::IoStats),
//! the buffer pool's [`PoolStats`], the injector's [`FaultStats`] — but
//! each experiment used to pluck fields out of each surface by hand.
//! [`MetricsSnapshot`] folds all of them into one plain-data struct with
//! a **stable text serialization** (`name value` lines, fixed order) and
//! a matching JSON object, shared by the `nwc-serve` stats endpoint and
//! the experiment JSON writers.
//!
//! Everything here is a point-in-time copy: capturing never locks more
//! than the pool's own stats path and never perturbs the counters.

use crate::index::NwcIndex;
use crate::result::SearchStats;
use nwc_store::{FaultStats, PoolStats};

/// Point-in-time copy of the tree/storage I/O counters (logical and
/// physical sides). On an arena-backed index the storage-level gauges
/// (`physical_reads`, `io_errors`, `prefetch_batches`,
/// `peak_resident_nodes`) are zero.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoCounters {
    /// Logical node accesses (physical reads + buffer hits) — the
    /// paper's "nodes visited" metric.
    pub accesses: u64,
    /// Physical node reads (pool misses that hit the store; every
    /// access on an arena tree).
    pub node_reads: u64,
    /// Accesses served by the buffer pool without physical I/O.
    pub buffer_hits: u64,
    /// Speculative pages read by readahead (outside `accesses`).
    pub prefetch_reads: u64,
    /// Demand accesses served from readahead-admitted pages.
    pub prefetch_hits: u64,
    /// Readahead batches that failed and were swallowed.
    pub prefetch_errors: u64,
    /// Readahead batches issued by the storage layer.
    pub prefetch_batches: u64,
    /// Demand faults that waited on an in-flight overlapped read.
    pub inflight_hits: u64,
    /// Microseconds of device time overlapped with query work.
    pub overlap_us: u64,
    /// Re-attempted page reads.
    pub retries: u64,
    /// Failed-then-recovered read attempts.
    pub transient_errors: u64,
    /// Pages quarantined after exhausting their retry budget.
    pub quarantined_pages: u64,
    /// Store-level physical page reads (demand + readahead).
    pub physical_reads: u64,
    /// Page reads that surfaced a hard error to a query.
    pub io_errors: u64,
    /// High-water mark of resident decoded nodes.
    pub peak_resident_nodes: u64,
}

/// Every stats surface of the stack in one plain-data struct. See the
/// module docs. Build one with [`MetricsSnapshot::capture`], fold
/// accumulated query stats in with [`MetricsSnapshot::with_search`],
/// attach injector counters with [`MetricsSnapshot::with_faults`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Accumulated per-query search counters (zeroed unless the caller
    /// folds its own accumulator in via [`MetricsSnapshot::with_search`]
    /// — the index does not keep per-query history).
    pub search: SearchStats,
    /// The tree/storage I/O counters at capture time.
    pub io: IoCounters,
    /// Buffer-pool gauges; `None` on an arena-backed index.
    pub pool: Option<PoolStats>,
    /// Fault-injection counters; `None` unless the caller queries
    /// through a `FaultStore` and attaches its stats.
    pub faults: Option<FaultStats>,
}

impl IoCounters {
    /// Adds `other`'s counters into `self`, field by field (used to
    /// aggregate per-shard captures).
    pub fn accumulate(&mut self, other: &IoCounters) {
        self.accesses += other.accesses;
        self.node_reads += other.node_reads;
        self.buffer_hits += other.buffer_hits;
        self.prefetch_reads += other.prefetch_reads;
        self.prefetch_hits += other.prefetch_hits;
        self.prefetch_errors += other.prefetch_errors;
        self.prefetch_batches += other.prefetch_batches;
        self.inflight_hits += other.inflight_hits;
        self.overlap_us += other.overlap_us;
        self.retries += other.retries;
        self.transient_errors += other.transient_errors;
        self.quarantined_pages += other.quarantined_pages;
        self.physical_reads += other.physical_reads;
        self.io_errors += other.io_errors;
        self.peak_resident_nodes += other.peak_resident_nodes;
    }
}

impl MetricsSnapshot {
    /// Captures the index's I/O and (when disk-backed) pool counters.
    pub fn capture(index: &NwcIndex) -> Self {
        let io = index.tree().stats();
        let mut c = IoCounters {
            accesses: io.accesses(),
            node_reads: io.node_reads(),
            buffer_hits: io.buffer_hits(),
            prefetch_reads: io.prefetch_reads(),
            prefetch_hits: io.prefetch_hits(),
            prefetch_errors: io.prefetch_errors(),
            inflight_hits: io.inflight_hits(),
            overlap_us: io.overlap_us(),
            retries: io.retries(),
            transient_errors: io.transient_errors(),
            quarantined_pages: io.quarantined_pages(),
            ..IoCounters::default()
        };
        let pool = index.tree().storage().map(|storage| {
            c.prefetch_batches = storage.prefetch_batches();
            c.physical_reads = storage.physical_reads();
            c.io_errors = storage.io_errors();
            c.peak_resident_nodes = storage.peak_resident_nodes() as u64;
            storage.pool_stats()
        });
        MetricsSnapshot {
            search: SearchStats::default(),
            io: c,
            pool,
            faults: None,
        }
    }

    /// Captures the aggregate across every shard of a
    /// [`ShardedNwcIndex`](crate::ShardedNwcIndex): I/O counters are
    /// summed per shard (`peak_resident_nodes` sums to an upper bound —
    /// the shard peaks need not coincide), and pool gauges sum across
    /// the shard pools (`Some` when any shard is disk-backed; capacity
    /// saturates so one unbounded shard pool reports an unbounded
    /// total).
    pub fn capture_sharded(index: &crate::ShardedNwcIndex) -> Self {
        let mut agg = MetricsSnapshot::default();
        for shard in index.shards() {
            let snap = Self::capture(shard);
            agg.io.accumulate(&snap.io);
            if let Some(p) = snap.pool {
                let total = agg.pool.get_or_insert_with(PoolStats::default);
                total.hits += p.hits;
                total.misses += p.misses;
                total.evictions += p.evictions;
                total.capacity = total.capacity.saturating_add(p.capacity);
                total.resident += p.resident;
                total.pinned += p.pinned;
                total.prefetched += p.prefetched;
                total.prefetch_hits += p.prefetch_hits;
                total.prefetch_waste += p.prefetch_waste;
            }
        }
        agg
    }

    /// Returns the snapshot with accumulated query counters folded in.
    #[must_use]
    pub fn with_search(mut self, search: SearchStats) -> Self {
        self.search = search;
        self
    }

    /// Returns the snapshot with fault-injection counters attached.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultStats) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Visits every metric as a `(name, value)` pair, in the stable
    /// serialization order. Optional surfaces (pool, faults) are simply
    /// absent when not captured, never emitted as zeros — a scrape can
    /// tell "no pool" from "idle pool".
    pub fn for_each(&self, mut f: impl FnMut(&'static str, u64)) {
        let s = &self.search;
        f("search_io_total", s.io_total);
        f("search_io_traversal", s.io_traversal);
        f("search_io_window_queries", s.io_window_queries);
        f("search_buffer_hits", s.buffer_hits);
        f("search_objects_visited", s.objects_visited);
        f("search_window_queries", s.window_queries);
        f("search_skipped_by_srr", s.skipped_by_srr);
        f("search_skipped_by_dep", s.skipped_by_dep);
        f("search_nodes_pruned_by_dip", s.nodes_pruned_by_dip);
        f("search_nodes_pruned_by_dep", s.nodes_pruned_by_dep);
        f("search_candidate_windows", s.candidate_windows);
        f("search_qualified_windows", s.qualified_windows);
        f("search_best_updates", s.best_updates);
        f("search_retries", s.retries);
        f("search_transient_errors", s.transient_errors);
        let io = &self.io;
        f("io_accesses", io.accesses);
        f("io_node_reads", io.node_reads);
        f("io_buffer_hits", io.buffer_hits);
        f("io_prefetch_reads", io.prefetch_reads);
        f("io_prefetch_hits", io.prefetch_hits);
        f("io_prefetch_errors", io.prefetch_errors);
        f("io_prefetch_batches", io.prefetch_batches);
        f("io_inflight_hits", io.inflight_hits);
        f("io_overlap_us", io.overlap_us);
        f("io_retries", io.retries);
        f("io_transient_errors", io.transient_errors);
        f("io_quarantined_pages", io.quarantined_pages);
        f("io_physical_reads", io.physical_reads);
        f("io_errors", io.io_errors);
        f("io_peak_resident_nodes", io.peak_resident_nodes);
        if let Some(p) = &self.pool {
            f("pool_hits", p.hits);
            f("pool_misses", p.misses);
            f("pool_evictions", p.evictions);
            f("pool_capacity", pool_gauge(p.capacity));
            f("pool_resident", p.resident as u64);
            f("pool_pinned", p.pinned as u64);
            f("pool_prefetched", p.prefetched);
            f("pool_prefetch_hits", p.prefetch_hits);
            f("pool_prefetch_waste", p.prefetch_waste);
        }
        if let Some(ft) = &self.faults {
            f("fault_transient", ft.transient);
            f("fault_torn", ft.torn);
            f("fault_permanent", ft.permanent);
            f("fault_bitrot", ft.bitrot);
            f("fault_delayed", ft.delayed);
        }
    }

    /// The stable text serialization: one `name value` line per metric,
    /// in [`MetricsSnapshot::for_each`] order. This is what the
    /// `nwc-serve` stats endpoint returns.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.for_each(|name, value| {
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        });
        out
    }

    /// The same metrics as one JSON object (hand-rolled — the workspace
    /// has no serde), `{"name": value, ...}` in the stable order. Used
    /// by the experiment JSON writers.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        self.for_each(|name, value| {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push('"');
            out.push_str(name);
            out.push_str("\": ");
            out.push_str(&value.to_string());
        });
        out.push('}');
        out
    }
}

/// An unbounded pool reports `usize::MAX`; clamp the gauge so the text
/// form stays readable and platform-independent.
fn pool_gauge(v: usize) -> u64 {
    if v == usize::MAX {
        0
    } else {
        v as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwc_geom::pt;

    fn arena_index() -> NwcIndex {
        let pts: Vec<_> = (0..200)
            .map(|i| pt(((i * 37) % 211) as f64, ((i * 53) % 197) as f64))
            .collect();
        NwcIndex::build(pts)
    }

    #[test]
    fn arena_capture_has_no_pool_or_faults() {
        let idx = arena_index();
        let query = crate::NwcQuery::new(pt(50.0, 50.0), crate::WindowSpec::square(20.0), 4);
        let (_, stats) = idx.nwc_full(&query, crate::Scheme::NWC_STAR);
        let snap = MetricsSnapshot::capture(&idx).with_search(stats);
        assert!(snap.pool.is_none());
        assert!(snap.faults.is_none());
        assert!(snap.io.accesses > 0);
        assert_eq!(snap.io.buffer_hits, 0, "arena trees have no pool");
        assert_eq!(snap.search.io_total, stats.io_total);
        let text = snap.to_text();
        assert!(text.contains("io_accesses "));
        assert!(!text.contains("pool_hits"), "absent surface serialized");
        assert!(!text.contains("fault_transient"));
    }

    #[test]
    fn text_and_json_agree_on_order_and_values() {
        let idx = arena_index();
        let snap = MetricsSnapshot::capture(&idx).with_faults(FaultStats::default());
        let text = snap.to_text();
        let json = snap.to_json();
        // Same metrics, same order, two encodings.
        let text_names: Vec<&str> = text
            .lines()
            .map(|l| l.split(' ').next().unwrap_or(""))
            .collect();
        let mut json_names = Vec::new();
        snap.for_each(|n, _| json_names.push(n));
        assert_eq!(text_names, json_names);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches('"').count(), 2 * json_names.len());
        assert!(text.contains("fault_transient 0"));
    }

    #[test]
    fn stable_order_is_deterministic() {
        let idx = arena_index();
        let a = MetricsSnapshot::capture(&idx).to_text();
        let b = MetricsSnapshot::capture(&idx).to_text();
        assert_eq!(a, b);
    }
}
