//! Nearest Window Cluster (NWC) query processing — the primary
//! contribution of Huang et al., *"Nearest Window Cluster Queries"*
//! (EDBT 2016).
//!
//! Given a query location `q`, a window of length `l` and width `w`, and
//! a count `n`, `NWC(q, l, w, n)` returns the `n` data objects that fit
//! inside some `l × w` axis-aligned window and minimize a distance
//! measure to `q` — "the nearest place where `n` clustered choices
//! exist". The `kNWC(k, q, l, w, n, m)` extension returns `k` such object
//! groups with at most `m` shared objects between any pair.
//!
//! # Architecture
//!
//! - [`NwcIndex`] owns the data: an instrumented R\*-tree
//!   (`nwc-rtree`), the DEP density grid (`nwc-grid`) and the IWP
//!   pointer augmentation, built once over a static point set.
//! - [`NwcIndex::nwc`] runs Algorithm 1: a best-first traversal visiting
//!   objects in ascending distance, generating candidate windows per
//!   object (Lemma 1 + the quadrant observations of §3.1) and keeping
//!   the best object group found.
//! - [`Scheme`] toggles the four optimizations — SRR, DIP, DEP, IWP —
//!   individually or in the paper's named combinations
//!   ([`Scheme::NWC_PLUS`], [`Scheme::NWC_STAR`]).
//! - [`NwcIndex::knwc`] runs the kNWC extension of §3.4.
//! - [`oracle`] holds brute-force reference implementations used by the
//!   test suites to verify every scheme returns the optimum.
//!
//! # Example
//!
//! ```
//! use nwc_core::{NwcIndex, NwcQuery, Scheme};
//! use nwc_geom::{pt, window::WindowSpec};
//!
//! let shops = vec![
//!     pt(52.0, 55.0), pt(53.0, 56.0), pt(54.0, 54.0), // a walkable cluster
//!     pt(90.0, 90.0),                                  // a lone shop far away
//! ];
//! let index = NwcIndex::build(shops);
//! let query = NwcQuery::new(pt(50.0, 50.0), WindowSpec::square(8.0), 3);
//! let hit = index.nwc(&query, Scheme::NWC_STAR).expect("cluster exists");
//! assert_eq!(hit.objects.len(), 3);
//! assert!(hit.objects.iter().all(|e| e.point.x < 60.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algo;
mod anytime;
mod candidates;
mod constrained;
pub mod engine;
mod index;
pub mod ingest;
mod knwc;
pub mod maxrs;
mod measure;
pub mod metrics;
pub mod oracle;
mod query;
mod result;
mod scheme;
mod scratch;
pub mod shard;
pub mod weighted;

pub use anytime::{frontier_slack, AnytimeKnwc, AnytimeNwc, Approx, BudgetSpent};
pub use engine::QueryEngine;
pub use index::{DiskIndexConfig, IndexConfig, IndexOpenError, IndexUpdateError, NwcIndex};
pub use ingest::{IngestConfig, StreamingIngestor};
pub use knwc::{KnwcGroup, KnwcResult};
pub use measure::DistanceMeasure;
pub use metrics::MetricsSnapshot;
pub use query::{KnwcQuery, NwcQuery, QueryError};
pub use result::{NwcResult, SearchStats};
pub use scheme::Scheme;
pub use scratch::QueryScratch;
pub use shard::{
    ShardAssemblyError, ShardScatterError, ShardedAnytimeKnwc, ShardedAnytimeNwc,
    ShardedKnwcAnswer, ShardedNwcAnswer, ShardedNwcIndex, ShardedStoreError,
};

// Re-export the vocabulary types callers need to use the API.
pub use nwc_geom::{window::WindowSpec, Point, Rect};
pub use nwc_rtree::{
    Budget, CancelFlag, CancelKind, CancelToken, DiskError, DiskReadError, Entry, ObjectId,
    PageLayout, PageStore, RetryPolicy,
};
