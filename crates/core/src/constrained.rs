//! Region-constrained NWC queries.
//!
//! A natural extension in the spirit of constrained nearest-neighbor
//! queries (Ferhatosmanoglu et al., SSTD 2001 — cited by the paper's
//! related work): answer `NWC(q, l, w, n)` considering only windows that
//! lie entirely inside a constraint region `R`. "Find the nearest
//! cluster of 8 shops *inside the old town*."
//!
//! The constraint is on the *objects*: every object of the returned
//! group lies inside `R` (the discovery window may overhang the region
//! boundary, exactly as a constrained-NN result's Voronoi cell may).
//!
//! Implementation: the unchanged traversal with a sink that rejects
//! groups containing out-of-region objects. Rejection keeps the pruning
//! threshold untouched, so SRR/DIP stay sound — they only ever prune
//! windows farther than the best *accepted* group. Use the monotone
//! measures (min/max/avg) with constrained queries; the nearest-window
//! measure's sliding-window semantics interacts oddly with a region
//! boundary.

use crate::candidates::GroupSink;
use crate::index::NwcIndex;
use crate::query::NwcQuery;
use crate::result::{NwcResult, SearchStats};
use crate::scheme::Scheme;
use nwc_geom::Rect;
use nwc_rtree::Entry;

impl NwcIndex {
    /// Answers `NWC(q, l, w, n)` restricted to groups whose objects all
    /// lie inside `region`.
    ///
    /// Returns `None` when no qualifying group exists inside the region.
    pub fn nwc_within(
        &self,
        query: &NwcQuery,
        scheme: Scheme,
        region: &Rect,
    ) -> Option<NwcResult> {
        let mut sink = ConstrainedSink {
            region: *region,
            dist_best: f64::INFINITY,
            best: None,
        };
        let stats = self.run_search(query, scheme, &mut sink);
        sink.best.map(|(objects, window)| NwcResult {
            objects,
            distance: sink.dist_best,
            window,
            stats,
        })
    }
}

struct ConstrainedSink {
    region: Rect,
    dist_best: f64,
    best: Option<(Vec<Entry>, Rect)>,
}

impl GroupSink for ConstrainedSink {
    fn threshold(&self) -> f64 {
        self.dist_best
    }

    fn offer(&mut self, group: Vec<Entry>, score: f64, window: Rect, stats: &mut SearchStats) {
        if !group.iter().all(|e| self.region.contains_point(&e.point)) {
            return;
        }
        if score < self.dist_best {
            self.dist_best = score;
            self.best = Some((group, window));
            stats.best_updates += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WindowSpec;
    use nwc_geom::{pt, rect};

    fn world() -> Vec<nwc_geom::Point> {
        // Near cluster outside the region, far cluster inside it.
        let mut pts = vec![pt(10.0, 10.0), pt(11.0, 11.0), pt(12.0, 10.5)];
        pts.extend([pt(70.0, 70.0), pt(71.0, 71.0), pt(72.0, 70.5)]);
        pts
    }

    #[test]
    fn region_excludes_nearer_cluster() {
        let idx = NwcIndex::build(world());
        let query = NwcQuery::new(pt(0.0, 0.0), WindowSpec::square(6.0), 3);
        let region = rect(50.0, 50.0, 100.0, 100.0);
        let r = idx.nwc_within(&query, Scheme::NWC_STAR, &region).unwrap();
        assert!(r.objects.iter().all(|e| region.contains_point(&e.point)));
        let mut ids = r.ids();
        ids.sort_unstable();
        assert_eq!(ids, vec![3, 4, 5]);
    }

    #[test]
    fn unbounded_region_matches_plain_nwc() {
        let idx = NwcIndex::build(world());
        let query = NwcQuery::new(pt(5.0, 5.0), WindowSpec::square(6.0), 3);
        let everything = rect(-1e6, -1e6, 1e6, 1e6);
        let constrained = idx
            .nwc_within(&query, Scheme::NWC_PLUS, &everything)
            .unwrap();
        let plain = idx.nwc(&query, Scheme::NWC_PLUS).unwrap();
        assert!((constrained.distance - plain.distance).abs() < 1e-9);
    }

    #[test]
    fn empty_region_returns_none() {
        let idx = NwcIndex::build(world());
        let query = NwcQuery::new(pt(0.0, 0.0), WindowSpec::square(6.0), 3);
        let region = rect(200.0, 200.0, 300.0, 300.0);
        assert!(idx.nwc_within(&query, Scheme::NWC_STAR, &region).is_none());
    }

    #[test]
    fn all_schemes_agree_constrained() {
        let idx = NwcIndex::build(world());
        let query = NwcQuery::new(pt(0.0, 0.0), WindowSpec::square(6.0), 3);
        let region = rect(60.0, 60.0, 90.0, 90.0);
        let dists: Vec<Option<f64>> = Scheme::TABLE3
            .iter()
            .map(|&s| idx.nwc_within(&query, s, &region).map(|r| r.distance))
            .collect();
        for d in &dists[1..] {
            assert_eq!(
                d.map(|x| (x * 1e9).round()),
                dists[0].map(|x| (x * 1e9).round())
            );
        }
    }
}
