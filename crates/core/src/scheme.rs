//! Optimization schemes (paper Table 3).

use std::fmt;

/// Which of the four optimization techniques are enabled for a query.
///
/// The paper evaluates the baseline, each technique alone, and two
/// combinations, all available as constants:
///
/// | Constant | SRR | DIP | DEP | IWP |
/// |----------|-----|-----|-----|-----|
/// | [`Scheme::NWC`]      | – | – | – | – |
/// | [`Scheme::SRR`]      | ✓ | – | – | – |
/// | [`Scheme::DIP`]      | – | ✓ | – | – |
/// | [`Scheme::DEP`]      | – | – | ✓ | – |
/// | [`Scheme::IWP`]      | – | – | – | ✓ |
/// | [`Scheme::NWC_PLUS`] | ✓ | ✓ | – | – |
/// | [`Scheme::NWC_STAR`] | ✓ | ✓ | ✓ | ✓ |
///
/// `NWC+` enables the two techniques that need no extra storage;
/// `NWC*` enables everything.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct Scheme {
    /// Search region reduction (§3.3.1): shrink/skip per-object search
    /// regions using `dist_best`.
    pub srr: bool,
    /// Distance-based pruning (§3.3.2): prune index nodes whose every
    /// generated window is farther than `dist_best`.
    pub dip: bool,
    /// Density-based pruning (§3.3.3): prune nodes and cancel window
    /// queries whose density-grid upper bound is below `n`.
    pub dep: bool,
    /// Incremental window query processing (§3.3.4): answer window
    /// queries from backward/overlapping pointers instead of the root.
    pub iwp: bool,
}

impl Scheme {
    /// The unoptimized baseline.
    pub const NWC: Scheme = Scheme {
        srr: false,
        dip: false,
        dep: false,
        iwp: false,
    };
    /// Search region reduction only.
    pub const SRR: Scheme = Scheme { srr: true, ..Scheme::NWC };
    /// Distance-based pruning only.
    pub const DIP: Scheme = Scheme { dip: true, ..Scheme::NWC };
    /// Density-based pruning only.
    pub const DEP: Scheme = Scheme { dep: true, ..Scheme::NWC };
    /// Incremental window query processing only.
    pub const IWP: Scheme = Scheme { iwp: true, ..Scheme::NWC };
    /// SRR + DIP — the best storage-free combination (paper "NWC+").
    pub const NWC_PLUS: Scheme = Scheme {
        srr: true,
        dip: true,
        dep: false,
        iwp: false,
    };
    /// All four techniques (paper "NWC*").
    pub const NWC_STAR: Scheme = Scheme {
        srr: true,
        dip: true,
        dep: true,
        iwp: true,
    };

    /// The seven schemes of Table 3, in the paper's order.
    pub const TABLE3: [Scheme; 7] = [
        Scheme::NWC,
        Scheme::SRR,
        Scheme::DIP,
        Scheme::DEP,
        Scheme::IWP,
        Scheme::NWC_PLUS,
        Scheme::NWC_STAR,
    ];

    /// The paper's label for this scheme, falling back to a flag list for
    /// unnamed combinations.
    pub fn label(&self) -> String {
        match *self {
            Scheme::NWC => "NWC".into(),
            Scheme::SRR => "SRR".into(),
            Scheme::DIP => "DIP".into(),
            Scheme::DEP => "DEP".into(),
            Scheme::IWP => "IWP".into(),
            Scheme::NWC_PLUS => "NWC+".into(),
            Scheme::NWC_STAR => "NWC*".into(),
            _ => {
                let mut parts = Vec::new();
                if self.srr {
                    parts.push("SRR");
                }
                if self.dip {
                    parts.push("DIP");
                }
                if self.dep {
                    parts.push("DEP");
                }
                if self.iwp {
                    parts.push("IWP");
                }
                if parts.is_empty() {
                    "NWC".into()
                } else {
                    parts.join("+")
                }
            }
        }
    }

    /// Whether this scheme needs the density grid.
    pub fn needs_grid(&self) -> bool {
        self.dep
    }

    /// Whether this scheme needs the IWP pointer augmentation.
    pub fn needs_iwp(&self) -> bool {
        self.iwp
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        let labels: Vec<String> = Scheme::TABLE3.iter().map(Scheme::label).collect();
        assert_eq!(labels, ["NWC", "SRR", "DIP", "DEP", "IWP", "NWC+", "NWC*"]);
    }

    #[test]
    fn custom_combination_label() {
        let s = Scheme {
            srr: true,
            dep: true,
            ..Scheme::NWC
        };
        assert_eq!(s.label(), "SRR+DEP");
    }

    #[test]
    fn requirements() {
        assert!(Scheme::NWC_STAR.needs_grid());
        assert!(Scheme::NWC_STAR.needs_iwp());
        assert!(!Scheme::NWC_PLUS.needs_grid());
        assert!(!Scheme::NWC_PLUS.needs_iwp());
        assert!(Scheme::DEP.needs_grid());
        assert!(Scheme::IWP.needs_iwp());
    }

    #[test]
    fn default_is_baseline() {
        assert_eq!(Scheme::default(), Scheme::NWC);
    }
}
