//! The NWC algorithm (paper Algorithm 1), shared by NWC and kNWC.
//!
//! The search is a best-first traversal over the R\*-tree (priority queue
//! holding both index nodes and objects in ascending `MINDIST`/distance
//! order). Nodes are pruned by DIP/DEP before expansion; objects have
//! their search region built (reduced/skipped by SRR, cancelled by DEP),
//! queried (through IWP when enabled), and their candidate windows
//! scanned. The sink abstraction lets the same loop serve the single-best
//! NWC query and the top-k kNWC query.

use crate::anytime::{AnytimeNwc, Approx};
use crate::candidates::{scan_candidates, GroupSink};
use crate::index::NwcIndex;
use crate::query::{NwcQuery, QueryError};
use crate::result::{NwcResult, SearchStats};
use crate::scheme::Scheme;
use crate::scratch::QueryScratch;
use nwc_geom::window::{
    extended_mbr, node_window_lower_bound, reduced_search_region, search_region,
};
use nwc_geom::{Quadrant, Rect};
use nwc_rtree::{BrowseItem, Budget, CancelKind, CancelToken, Entry};

/// How the shared traversal loop stopped.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum SearchEnd {
    /// The frontier drained: the sink saw every candidate the scheme's
    /// pruning admits.
    Complete,
    /// The budget expired mid-search. `frontier` is the best-first key
    /// (`MINDIST`/distance) of the item being processed when the budget
    /// tripped — a sound lower bound on the score of every group the
    /// search did not cover, because each such group's nearest object is
    /// anchored at or behind that frontier position.
    Exhausted {
        /// Which limit fired.
        kind: CancelKind,
        /// Lower bound on every uncovered group's score.
        frontier: f64,
    },
}

impl NwcIndex {
    /// Answers `NWC(q, l, w, n)` under the given optimization scheme.
    ///
    /// Returns `None` when no `l × w` window anywhere contains `n`
    /// objects. Every scheme returns a group with the same (optimal)
    /// distance; they differ only in I/O cost.
    ///
    /// # Panics
    ///
    /// Panics when the scheme needs a structure the index was built
    /// without (density grid for DEP, pointer augmentation for IWP).
    pub fn nwc(&self, query: &NwcQuery, scheme: Scheme) -> Option<NwcResult> {
        self.nwc_full(query, scheme).0
    }

    /// As [`NwcIndex::nwc`], reusing the buffers of `scratch` so a warm
    /// query performs no per-node or per-visited-object heap allocation
    /// (see [`QueryScratch`]). Results and I/O counts are identical to
    /// [`NwcIndex::nwc`].
    pub fn nwc_with(
        &self,
        query: &NwcQuery,
        scheme: Scheme,
        scratch: &mut QueryScratch,
    ) -> Option<NwcResult> {
        self.nwc_full_with(query, scheme, scratch).0
    }

    /// As [`NwcIndex::nwc`], also returning the search statistics even
    /// when the query has no answer (the experiments need the I/O cost
    /// of fruitless searches — e.g. Figure 12's smallest windows on the
    /// Gaussian dataset).
    pub fn nwc_full(&self, query: &NwcQuery, scheme: Scheme) -> (Option<NwcResult>, SearchStats) {
        self.nwc_full_with(query, scheme, &mut QueryScratch::default())
    }

    /// As [`NwcIndex::nwc_full`] with scratch reuse (see
    /// [`NwcIndex::nwc_with`]).
    pub fn nwc_full_with(
        &self,
        query: &NwcQuery,
        scheme: Scheme,
        scratch: &mut QueryScratch,
    ) -> (Option<NwcResult>, SearchStats) {
        match self.try_nwc_full_with(query, scheme, scratch) {
            Ok(r) => r,
            Err(e) => unrecoverable(e),
        }
    }

    /// As [`NwcIndex::nwc`], surfacing disk read failures as
    /// [`QueryError::Io`] instead of panicking. On an arena-backed index
    /// this never errs; on a disk-backed index an error leaves the index
    /// fully usable (pins released, failing page quarantined).
    pub fn try_nwc(
        &self,
        query: &NwcQuery,
        scheme: Scheme,
    ) -> Result<Option<NwcResult>, QueryError> {
        Ok(self.try_nwc_full(query, scheme)?.0)
    }

    /// As [`NwcIndex::try_nwc`] with scratch reuse.
    pub fn try_nwc_with(
        &self,
        query: &NwcQuery,
        scheme: Scheme,
        scratch: &mut QueryScratch,
    ) -> Result<Option<NwcResult>, QueryError> {
        Ok(self.try_nwc_full_with(query, scheme, scratch)?.0)
    }

    /// As [`NwcIndex::nwc_full`], surfacing disk read failures as
    /// [`QueryError::Io`] (see [`NwcIndex::try_nwc`]).
    pub fn try_nwc_full(
        &self,
        query: &NwcQuery,
        scheme: Scheme,
    ) -> Result<(Option<NwcResult>, SearchStats), QueryError> {
        self.try_nwc_full_with(query, scheme, &mut QueryScratch::default())
    }

    /// As [`NwcIndex::try_nwc_full`] with scratch reuse.
    pub fn try_nwc_full_with(
        &self,
        query: &NwcQuery,
        scheme: Scheme,
        scratch: &mut QueryScratch,
    ) -> Result<(Option<NwcResult>, SearchStats), QueryError> {
        self.try_nwc_full_cancel(query, scheme, scratch, &CancelToken::none())
    }

    /// As [`NwcIndex::try_nwc_full_with`], additionally observing a
    /// cooperative [`CancelToken`]. Once the token fires the search
    /// stops at its next cancellation point (a node expansion or a
    /// window query — so cancellation latency is bounded by one node
    /// access plus one window query) and returns
    /// [`QueryError::Deadline`] or [`QueryError::Cancelled`]. The index
    /// and the calling thread remain fully usable afterwards: every
    /// page pin is released and the scratch buffers are intact.
    pub fn try_nwc_full_cancel(
        &self,
        query: &NwcQuery,
        scheme: Scheme,
        scratch: &mut QueryScratch,
        cancel: &CancelToken,
    ) -> Result<(Option<NwcResult>, SearchStats), QueryError> {
        let mut sink = BestSink::new();
        let stats = self.try_run_search_cancel(query, scheme, &mut sink, scratch, cancel)?;
        let result = sink.best.map(|(objects, window)| NwcResult {
            objects,
            distance: sink.dist_best,
            window,
            stats,
        });
        Ok((result, stats))
    }

    /// The shared traversal loop. Public within the crate for `knwc`.
    pub(crate) fn run_search<S: GroupSink>(
        &self,
        query: &NwcQuery,
        scheme: Scheme,
        sink: &mut S,
    ) -> SearchStats {
        self.run_search_with(query, scheme, sink, &mut QueryScratch::default())
    }

    /// [`NwcIndex::run_search`] with caller-provided working memory: the
    /// frontier heap, neighbor buffer and distance ranking all come from
    /// `scratch`, so the loop itself stays allocation-free once the
    /// buffers are warm.
    pub(crate) fn run_search_with<S: GroupSink>(
        &self,
        query: &NwcQuery,
        scheme: Scheme,
        sink: &mut S,
        scratch: &mut QueryScratch,
    ) -> SearchStats {
        match self.try_run_search_with(query, scheme, sink, scratch) {
            Ok(stats) => stats,
            Err(e) => unrecoverable(e),
        }
    }

    /// The fallible traversal loop behind every query API. An `Err`
    /// means a disk read exhausted its retries (or hit corruption)
    /// mid-search: the traversal stops where it was, every page pin is
    /// already released, and the per-thread error counters the loop
    /// would have folded into [`SearchStats`] stay on the tree's
    /// [`IoStats`](nwc_rtree::IoStats).
    pub(crate) fn try_run_search_with<S: GroupSink>(
        &self,
        query: &NwcQuery,
        scheme: Scheme,
        sink: &mut S,
        scratch: &mut QueryScratch,
    ) -> Result<SearchStats, QueryError> {
        self.try_run_search_cancel(query, scheme, sink, scratch, &CancelToken::none())
    }

    /// [`NwcIndex::try_run_search_with`] plus a cooperative
    /// [`CancelToken`]: checked by the [`Browser`](nwc_rtree::Browser)
    /// before every node expansion and by this loop before every window
    /// query, the two I/O-bearing steps of the search. A tripped token
    /// surfaces as [`QueryError::Deadline`] / [`QueryError::Cancelled`]
    /// (the anytime APIs use [`NwcIndex::try_run_search_budget`] instead
    /// to keep the best-so-far state).
    pub(crate) fn try_run_search_cancel<S: GroupSink>(
        &self,
        query: &NwcQuery,
        scheme: Scheme,
        sink: &mut S,
        scratch: &mut QueryScratch,
        cancel: &CancelToken,
    ) -> Result<SearchStats, QueryError> {
        let budget = Budget::from(cancel.clone());
        match self.try_run_search_budget(query, scheme, sink, scratch, &budget)? {
            (stats, SearchEnd::Complete) => Ok(stats),
            (_, SearchEnd::Exhausted { kind, .. }) => Err(budget_error(kind)),
        }
    }

    /// The budgeted traversal loop behind everything. Runs until the
    /// frontier drains or `budget` expires; an expired budget is **not**
    /// an error — the search stops where it is (pins released, scratch
    /// intact, stats finalized for the covered prefix) and the caller
    /// receives [`SearchEnd::Exhausted`] with the frontier key, from
    /// which the anytime APIs derive their quality bound. Disk failures
    /// still surface as `Err`.
    pub(crate) fn try_run_search_budget<S: GroupSink>(
        &self,
        query: &NwcQuery,
        scheme: Scheme,
        sink: &mut S,
        scratch: &mut QueryScratch,
        budget: &Budget,
    ) -> Result<(SearchStats, SearchEnd), QueryError> {
        let grid = if scheme.needs_grid() {
            Some(self.grid().unwrap_or_else(|| {
                panic!("scheme {scheme} needs the density grid; build the index with one")
            }))
        } else {
            None
        };
        let iwp = if scheme.needs_iwp() {
            Some(self.iwp().unwrap_or_else(|| {
                panic!("scheme {scheme} needs the IWP augmentation; build the index with it")
            }))
        } else {
            None
        };

        let tree = self.tree();
        let io = tree.stats();
        let mut stats = SearchStats::default();
        let hits0 = io.hits_snapshot();
        let errors0 = io.error_snapshot();
        let q = query.q;
        let spec = query.spec;
        let n = query.n;

        // The loop and the browser each diff this thread's access tally
        // from their own base, so the I/O allowance covers traversal and
        // window queries alike.
        let budget_base = io.snapshot();
        let mut browser = tree.browse_with(q, &mut scratch.browser);
        if budget.is_armed() {
            browser.set_budget(budget.clone());
        }
        let mut end = SearchEnd::Complete;
        let neighbors = &mut scratch.neighbors;
        'search: while let Some(item) = browser.next() {
            // Best-first key of the item in hand: the frontier lower
            // bound should the budget expire while processing it.
            let key = item.key();
            match item {
                BrowseItem::Node { id, mbr, .. } => {
                    if scheme.dip
                        && node_window_lower_bound(&q, &mbr, &spec) > sink.threshold()
                    {
                        stats.nodes_pruned_by_dip += 1;
                        continue;
                    }
                    if let Some(grid) = grid {
                        if grid.count_upper_bound(&extended_mbr(&q, &mbr, &spec)) < n {
                            stats.nodes_pruned_by_dep += 1;
                            continue;
                        }
                    }
                    let snap = io.snapshot();
                    match browser.try_expand(id) {
                        Ok(()) => {}
                        Err(nwc_rtree::TreeError::Cancelled(kind)) => {
                            end = SearchEnd::Exhausted { kind, frontier: key };
                            break 'search;
                        }
                        Err(other) => return Err(other.into()),
                    }
                    stats.io_traversal += io.since(snap);
                }
                BrowseItem::Object { entry, leaf, .. } => {
                    stats.objects_visited += 1;
                    let quad = Quadrant::of(&q, &entry.point);
                    // Algorithm 1 line 14: build SR_p (reduced when SRR on).
                    let sr: Option<Rect> = if scheme.srr {
                        reduced_search_region(&q, &entry.point, &spec, sink.threshold())
                    } else {
                        Some(search_region(&entry.point, quad, &spec))
                    };
                    let Some(sr) = sr else {
                        stats.skipped_by_srr += 1;
                        continue;
                    };
                    if let Some(grid) = grid {
                        if grid.count_upper_bound(&sr) < n {
                            stats.skipped_by_dep += 1;
                            continue;
                        }
                    }
                    if let Some(kind) = budget.exceeded(|| io.since(budget_base)) {
                        end = SearchEnd::Exhausted { kind, frontier: key };
                        break 'search;
                    }
                    stats.window_queries += 1;
                    neighbors.clear();
                    let snap = io.snapshot();
                    match iwp {
                        Some(iwp) => iwp.try_window_query_into(tree, leaf, &sr, neighbors)?,
                        None => tree.try_window_query_into(&sr, neighbors)?,
                    }
                    stats.io_window_queries += io.since(snap);
                    scan_candidates(
                        &q,
                        &spec,
                        n,
                        query.measure,
                        &entry,
                        quad,
                        neighbors,
                        &mut scratch.by_dist,
                        sink,
                        &mut stats,
                    );
                }
            }
        }
        browser.recycle(&mut scratch.browser);
        // Attributed accounting: the tree counter is shared across
        // concurrent queries, so the query's own total is the sum of its
        // attributed phases, not a raw counter diff.
        stats.io_total = stats.io_traversal + stats.io_window_queries;
        // On a disk-backed tree some of those accesses were buffer hits
        // (no physical I/O); on an arena tree this is always 0.
        stats.buffer_hits = io.hits_since(hits0);
        // Degradation profile: retries issued and transient failures
        // recovered from, attributed to this query like the I/O split.
        let errors = io.errors_since(errors0);
        stats.retries = errors.retries;
        stats.transient_errors = errors.transient_errors;
        Ok((stats, end))
    }

    /// Anytime `NWC(q, l, w, n)`: runs until `budget` expires and
    /// returns the best group found so far with a proven quality bound
    /// (see [`AnytimeNwc`]) instead of erroring. With
    /// [`Approx::exact`] and [`Budget::none`] the answer and logical
    /// I/O are bit-identical to [`NwcIndex::try_nwc_full`].
    pub fn try_nwc_anytime(
        &self,
        query: &NwcQuery,
        scheme: Scheme,
        budget: &Budget,
        approx: Approx,
    ) -> Result<AnytimeNwc, QueryError> {
        self.try_nwc_anytime_with(query, scheme, &mut QueryScratch::default(), budget, approx)
    }

    /// As [`NwcIndex::try_nwc_anytime`] with scratch reuse.
    pub fn try_nwc_anytime_with(
        &self,
        query: &NwcQuery,
        scheme: Scheme,
        scratch: &mut QueryScratch,
        budget: &Budget,
        approx: Approx,
    ) -> Result<AnytimeNwc, QueryError> {
        let started = std::time::Instant::now();
        let io = self.tree().stats();
        let io0 = io.snapshot();
        let mut sink = BestSink::approx(approx.shrink());
        let (stats, end) = self.try_run_search_budget(query, scheme, &mut sink, scratch, budget)?;
        let spent = crate::anytime::BudgetSpent {
            elapsed_us: u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
            io: io.since(io0),
        };
        let (frontier_key, exhausted) = match end {
            SearchEnd::Complete => (f64::INFINITY, None),
            SearchEnd::Exhausted { kind, frontier } => (frontier, Some(kind)),
        };
        let slack = crate::anytime::frontier_slack(query.measure, &query.spec);
        let frontier = crate::anytime::frontier_lower_bound(frontier_key, slack);
        let dist_best = sink.dist_best;
        let lower_bound = crate::anytime::combine_lower_bound(dist_best, approx.shrink(), frontier);
        let error_bound = crate::anytime::gap(dist_best, lower_bound);
        let answer = sink.best.map(|(objects, window)| NwcResult {
            objects,
            distance: dist_best,
            window,
            stats,
        });
        Ok(AnytimeNwc {
            answer,
            stats,
            lower_bound,
            error_bound,
            spent,
            exhausted,
        })
    }
}

/// Maps a budget trip to the legacy error the pre-anytime `try_*_cancel`
/// APIs promise. An I/O allowance can only reach these APIs through a
/// `Budget`-derived token, where it plays the role of a spent deadline.
pub(crate) fn budget_error(kind: CancelKind) -> QueryError {
    match kind {
        CancelKind::Deadline => QueryError::Deadline,
        CancelKind::Stopped => QueryError::Cancelled,
        CancelKind::IoBudget => QueryError::Deadline,
    }
}

/// The infallible query APIs keep their historical panic on a disk read
/// that survives the whole retry budget — callers that can handle the
/// failure use the `try_*` twins.
#[cold]
#[inline(never)]
pub(crate) fn unrecoverable(e: QueryError) -> ! {
    panic!("unrecoverable disk read failure during search (use the try_* query APIs to handle this): {e}")
}

/// One ulp above `x` for finite non-negative `x` (identity on `+inf`).
/// Used to make pruning thresholds *tie-inclusive*: pruning with
/// `tie_inclusive(bound)` keeps every candidate that could still **tie**
/// the bound, so the canonical tie-break below sees all tied groups no
/// matter the traversal order — the answer becomes independent of visit
/// order, which the sharded scatter-gather planner relies on (shards
/// interleave arbitrarily) and which pins single-tree answers to the
/// oracle's `(distance, id_set)` canonical order.
pub(crate) fn tie_inclusive(x: f64) -> f64 {
    if x.is_finite() {
        f64::from_bits(x.to_bits() + 1)
    } else {
        x
    }
}

/// Canonical order over equal-score groups: ascending sorted-id set,
/// then window coordinates (`total_cmp`, so any bit pattern orders).
/// Matches the oracle's `(distance, id_set)` sort; the window key only
/// disambiguates one set reachable through distinct equal-score windows.
pub(crate) fn canonical_less(
    a_ids: &[u32],
    a_win: &Rect,
    b_ids: &[u32],
    b_win: &Rect,
) -> bool {
    use std::cmp::Ordering;
    match a_ids.cmp(b_ids) {
        Ordering::Less => true,
        Ordering::Greater => false,
        Ordering::Equal => {
            let key = |w: &Rect| [w.min.x, w.min.y, w.max.x, w.max.y];
            let (ka, kb) = (key(a_win), key(b_win));
            for (x, y) in ka.iter().zip(kb.iter()) {
                match x.total_cmp(y) {
                    Ordering::Less => return true,
                    Ordering::Greater => return false,
                    Ordering::Equal => {}
                }
            }
            false
        }
    }
}

/// Sorted object ids of a candidate group (set identity, tie-break key).
pub(crate) fn sorted_ids(group: &[Entry]) -> Vec<u32> {
    let mut ids: Vec<u32> = group.iter().map(|e| e.id).collect();
    ids.sort_unstable();
    ids
}

/// Sink keeping the single best group (`objs` / `dist_best` of the
/// problem transformation, §2.1). Ties on the score resolve canonically
/// (smallest sorted-id set, then window) so the answer is a function of
/// the offered *set* of groups, not their discovery order.
pub(crate) struct BestSink {
    pub(crate) dist_best: f64,
    pub(crate) best: Option<(Vec<Entry>, Rect)>,
    /// Sorted ids of `best` (canonical tie-break key).
    pub(crate) best_ids: Vec<u32>,
    /// Pruning-threshold factor `1/(1+ε)`; `1.0` = exact. Only the
    /// threshold shrinks — acceptance in `offer` stays exact, so the
    /// sink always holds the best group actually *seen*.
    pub(crate) shrink: f64,
}

impl BestSink {
    pub(crate) fn new() -> Self {
        BestSink::approx(1.0)
    }

    pub(crate) fn approx(shrink: f64) -> Self {
        BestSink {
            dist_best: f64::INFINITY,
            best: None,
            best_ids: Vec::new(),
            shrink,
        }
    }
}

impl GroupSink for BestSink {
    fn threshold(&self) -> f64 {
        tie_inclusive(self.dist_best * self.shrink)
    }

    fn offer(&mut self, group: Vec<Entry>, score: f64, window: Rect, stats: &mut SearchStats) {
        let take = if score < self.dist_best {
            true
        } else if score == self.dist_best {
            match &self.best {
                Some((_, win)) => {
                    let ids = sorted_ids(&group);
                    let better = canonical_less(&ids, &window, &self.best_ids, win);
                    if better {
                        self.best_ids = ids;
                    }
                    better
                }
                None => false, // score == +inf cannot happen for finite groups
            }
        } else {
            false
        };
        if take {
            if score < self.dist_best {
                self.best_ids = sorted_ids(&group);
            }
            self.dist_best = score;
            self.best = Some((group, window));
            stats.best_updates += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DistanceMeasure, WindowSpec};
    use nwc_geom::pt;

    fn cluster_world() -> Vec<nwc_geom::Point> {
        // Near cluster of 2 (too small for n=3), mid cluster of 3, far
        // cluster of 5.
        let mut pts = vec![pt(12.0, 10.0), pt(13.0, 11.0)];
        pts.extend([pt(40.0, 40.0), pt(42.0, 41.0), pt(41.0, 43.0)]);
        pts.extend([
            pt(90.0, 90.0),
            pt(91.0, 91.0),
            pt(92.0, 90.5),
            pt(90.5, 92.0),
            pt(91.5, 89.5),
        ]);
        pts
    }

    #[test]
    fn picks_nearest_sufficient_cluster() {
        let idx = NwcIndex::build(cluster_world());
        let query = NwcQuery::new(pt(10.0, 10.0), WindowSpec::square(8.0), 3);
        for scheme in Scheme::TABLE3 {
            let r = idx.nwc(&query, scheme).unwrap_or_else(|| {
                panic!("{scheme} found nothing")
            });
            let mut ids = r.ids();
            ids.sort_unstable();
            assert_eq!(ids, vec![2, 3, 4], "{scheme} picked the wrong cluster");
        }
    }

    #[test]
    fn small_n_uses_near_pair() {
        let idx = NwcIndex::build(cluster_world());
        let query = NwcQuery::new(pt(10.0, 10.0), WindowSpec::square(8.0), 2);
        let r = idx.nwc(&query, Scheme::NWC_STAR).unwrap();
        let mut ids = r.ids();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn n_larger_than_any_window_returns_none() {
        let idx = NwcIndex::build(cluster_world());
        let query = NwcQuery::new(pt(10.0, 10.0), WindowSpec::square(8.0), 6);
        for scheme in Scheme::TABLE3 {
            let (r, stats) = idx.nwc_full(&query, scheme);
            assert!(r.is_none(), "{scheme}");
            assert!(stats.io_total > 0);
        }
    }

    #[test]
    fn n_equals_one_degenerates_to_nearest_neighbor() {
        let idx = NwcIndex::build(cluster_world());
        let query = NwcQuery::new(pt(39.0, 39.0), WindowSpec::square(4.0), 1);
        let r = idx.nwc(&query, Scheme::NWC_STAR).unwrap();
        assert_eq!(r.ids(), vec![2]); // (40,40) is nearest
        let (d, e) = idx.tree().nearest(pt(39.0, 39.0)).unwrap();
        assert_eq!(e.id, 2);
        assert!((r.distance - d).abs() < 1e-12);
    }

    #[test]
    fn schemes_agree_on_distance() {
        let idx = NwcIndex::build(cluster_world());
        for n in [2usize, 3, 5] {
            for measure in DistanceMeasure::ALL {
                let query = NwcQuery::new(pt(15.0, 20.0), WindowSpec::square(6.0), n)
                    .with_measure(measure);
                let dists: Vec<Option<f64>> = Scheme::TABLE3
                    .iter()
                    .map(|&s| idx.nwc(&query, s).map(|r| r.distance))
                    .collect();
                for d in &dists[1..] {
                    match (dists[0], *d) {
                        (None, None) => {}
                        (Some(a), Some(b)) => {
                            assert!((a - b).abs() < 1e-9, "{measure:?} n={n}: {dists:?}")
                        }
                        _ => panic!("{measure:?} n={n}: disagreement {dists:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn optimized_schemes_cost_no_more_io() {
        let pts: Vec<_> = (0..3000)
            .map(|i| {
                pt(
                    ((i * 37) % 997) as f64 * 10.0,
                    ((i * 61) % 991) as f64 * 10.0,
                )
            })
            .collect();
        let idx = NwcIndex::build(pts);
        let query = NwcQuery::new(pt(5000.0, 5000.0), WindowSpec::square(200.0), 8);
        let (_, base) = idx.nwc_full(&query, Scheme::NWC);
        let (_, star) = idx.nwc_full(&query, Scheme::NWC_STAR);
        assert!(
            star.io_total < base.io_total,
            "NWC* ({}) should beat NWC ({})",
            star.io_total,
            base.io_total
        );
    }

    #[test]
    fn result_window_contains_group() {
        let idx = NwcIndex::build(cluster_world());
        let query = NwcQuery::new(pt(0.0, 0.0), WindowSpec::square(8.0), 3);
        let r = idx.nwc(&query, Scheme::NWC_PLUS).unwrap();
        for e in &r.objects {
            assert!(r.window.contains_point(&e.point));
        }
        assert!(r.window.width() <= query.spec.l + 1e-9);
        assert!(r.window.height() <= query.spec.w + 1e-9);
    }

    #[test]
    fn group_ordered_by_distance() {
        let idx = NwcIndex::build(cluster_world());
        let query = NwcQuery::new(pt(100.0, 100.0), WindowSpec::square(8.0), 4);
        let r = idx.nwc(&query, Scheme::NWC_STAR).unwrap();
        let d: Vec<f64> = r.objects.iter().map(|e| e.point.dist(&query.q)).collect();
        assert!(d.windows(2).all(|w| w[0] <= w[1]), "{d:?}");
    }

    #[test]
    #[should_panic(expected = "density grid")]
    fn dep_without_grid_panics() {
        let cfg = crate::IndexConfig {
            grid_cell_size: None,
            ..Default::default()
        };
        let idx = NwcIndex::build_with(cluster_world(), cfg);
        let query = NwcQuery::new(pt(0.0, 0.0), WindowSpec::square(8.0), 3);
        idx.nwc(&query, Scheme::DEP);
    }
}
