//! The query index: R\*-tree + density grid + IWP augmentation.

use nwc_geom::{Point, Rect};
use nwc_grid::DensityGrid;
use nwc_rtree::{
    DiskError, DiskOptions, DiskReadError, IwpIndex, PageLayout, PageStore, RStarTree,
    RetryPolicy, TreeError, TreeParams, PAGE_SIZE,
};
use std::path::Path;

/// Construction options for an [`NwcIndex`].
#[derive(Clone, Copy, Debug)]
pub struct IndexConfig {
    /// R\*-tree shape (default: the paper's 50 entries per node).
    pub tree_params: TreeParams,
    /// Density-grid cell size (default 25, per §5: "the grid cell size is
    /// set to 25"); `None` skips building the grid (DEP unavailable).
    pub grid_cell_size: Option<f64>,
    /// Whether to build the IWP pointer augmentation (default true).
    pub build_iwp: bool,
    /// `true` (default) bulk-loads with STR; `false` builds by repeated
    /// R\* insertion, as the original Java implementation would.
    pub bulk_load: bool,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            tree_params: TreeParams::default(),
            grid_cell_size: Some(25.0),
            build_iwp: true,
            bulk_load: true,
        }
    }
}

/// Options for opening a disk-backed index ([`NwcIndex::open_disk`]).
#[derive(Clone, Copy, Debug)]
pub struct DiskIndexConfig {
    /// Buffer pool capacity in pages; `None` = unbounded (every page
    /// faults in once and stays resident).
    pub pool_capacity: Option<usize>,
    /// Upper bound on the tree's resident memory, in bytes; `None` =
    /// no budget. Converted into a pool capacity at roughly
    /// 2 × [`PAGE_SIZE`] per frame (the raw page plus its decoded
    /// node, which the demand pager keeps in lock-step) and combined
    /// with [`DiskIndexConfig::pool_capacity`] by taking the smaller,
    /// never below one frame.
    pub memory_budget_bytes: Option<u64>,
    /// Readahead width: on a query descent into an internal node, up
    /// to this many of its most promising children are read ahead in
    /// batched runs and admitted to the pool unpinned (default 0 =
    /// off). Prefetch reads sit outside the demand I/O counters, so
    /// logical I/O — the paper's metric — is unaffected; only the
    /// physical-read/buffer-hit split shifts.
    pub prefetch: usize,
    /// Number of buffer-pool lock stripes; `None` (default) picks
    /// automatically (1 on small pools or single-core hosts). Aggregate
    /// hit/miss/eviction accounting is exact regardless of the count.
    pub pool_shards: Option<usize>,
    /// Density-grid cell size, as in [`IndexConfig::grid_cell_size`].
    /// The grid is rebuilt in memory from the stored points.
    pub grid_cell_size: Option<f64>,
    /// Whether to rebuild the IWP pointer augmentation.
    pub build_iwp: bool,
    /// How page reads behave under transient failures (default: 4
    /// attempts with bounded exponential backoff; see [`RetryPolicy`]).
    /// Exhausting the budget quarantines the page and surfaces a typed
    /// error through the `try_*` query APIs.
    pub retry: RetryPolicy,
    /// I/O worker threads for overlapped readahead (default 0 =
    /// readahead stays synchronous on the query thread). With ≥ 1,
    /// readahead runs are submitted to a completion thread pool and the
    /// query keeps descending while the device is busy; answers and
    /// logical I/O are bit-identical either way. No effect when
    /// [`DiskIndexConfig::prefetch`] is 0.
    pub io_threads: usize,
}

impl Default for DiskIndexConfig {
    fn default() -> Self {
        DiskIndexConfig {
            pool_capacity: None,
            memory_budget_bytes: None,
            prefetch: 0,
            pool_shards: None,
            grid_cell_size: Some(25.0),
            build_iwp: true,
            retry: RetryPolicy::default(),
            io_threads: 0,
        }
    }
}

impl DiskIndexConfig {
    /// The pool capacity actually used: the stricter of the explicit
    /// capacity and the memory budget (at ~2 × [`PAGE_SIZE`] resident
    /// bytes per frame), `None` when neither bounds the pool.
    pub fn effective_pool_capacity(&self) -> Option<usize> {
        let budget_frames = self
            .memory_budget_bytes
            .map(|bytes| usize::try_from(bytes / (2 * PAGE_SIZE as u64)).unwrap_or(usize::MAX))
            .map(|frames| frames.max(1));
        match (self.pool_capacity, budget_frames) {
            (None, None) => None,
            (cap, budget) => Some(cap.unwrap_or(usize::MAX).min(budget.unwrap_or(usize::MAX))),
        }
    }

    /// The tree-layer options this configuration resolves to.
    fn disk_options(&self) -> DiskOptions {
        DiskOptions {
            pool_capacity: self.effective_pool_capacity(),
            pool_shards: self.pool_shards,
            prefetch: self.prefetch,
            retry: self.retry,
            io_threads: self.io_threads,
        }
    }
}

/// An error produced by [`NwcIndex::open_disk`].
#[derive(Debug)]
pub enum IndexOpenError {
    /// The page file could not be opened or decoded.
    Disk(DiskError),
    /// The file holds a valid but empty tree; an index needs at least
    /// one object.
    EmptyDataset,
}

impl std::fmt::Display for IndexOpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexOpenError::Disk(e) => write!(f, "{e}"),
            IndexOpenError::EmptyDataset => write!(f, "page file holds an empty tree"),
        }
    }
}

impl std::error::Error for IndexOpenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexOpenError::Disk(e) => Some(e),
            IndexOpenError::EmptyDataset => None,
        }
    }
}

impl From<DiskError> for IndexOpenError {
    fn from(e: DiskError) -> Self {
        IndexOpenError::Disk(e)
    }
}

/// An error produced by [`NwcIndex::insert`] / [`NwcIndex::remove`].
#[derive(Debug, PartialEq, Eq)]
pub enum IndexUpdateError {
    /// The index is disk-backed over a store with no write path (a
    /// version-1 page file, a read-only backend, or a file opened
    /// without write permission). Save a writable file with
    /// [`NwcIndex::save_tree_writable`] and reopen it to mutate on
    /// disk, or rebuild in memory. The index is unchanged.
    ReadOnly,
    /// A page read failed during the update (a writable disk-backed
    /// index faults tree nodes in while descending). The overlay may be
    /// partially updated: drop the index without committing — the page
    /// file still holds the last committed state — and reopen.
    Io(DiskReadError),
}

impl std::fmt::Display for IndexUpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexUpdateError::ReadOnly => {
                write!(
                    f,
                    "disk-backed index is read-only (reopen from a writable page file \
                     written by save_tree_writable to mutate it)"
                )
            }
            IndexUpdateError::Io(e) => write!(f, "disk read failed: {e}"),
        }
    }
}

impl std::error::Error for IndexUpdateError {}

impl From<TreeError> for IndexUpdateError {
    fn from(e: TreeError) -> Self {
        match e {
            TreeError::ReadOnly => IndexUpdateError::ReadOnly,
            TreeError::Io(e) => IndexUpdateError::Io(e),
            // Updates never arm a cancellation token; keep the
            // conversion total by reporting the cancellation as a
            // page-less read failure rather than panicking.
            TreeError::Cancelled(kind) => IndexUpdateError::Io(nwc_rtree::DiskReadError {
                page: u32::MAX,
                detail: kind.to_string(),
            }),
        }
    }
}

/// An immutable index over a point dataset, ready to answer NWC and kNWC
/// queries under any [`Scheme`](crate::Scheme).
///
/// Owns the paper's three physical structures: the R\*-tree `T_P`, the
/// `g × g` density grid of DEP, and the backward/overlapping pointers of
/// IWP.
pub struct NwcIndex {
    points: Vec<Point>,
    /// Liveness per id — `false` marks objects removed after build.
    live: Vec<bool>,
    live_count: usize,
    bounds: Rect,
    tree: RStarTree,
    grid: Option<DensityGrid>,
    iwp: Option<IwpIndex>,
}

impl NwcIndex {
    /// Builds the index with default configuration (all structures, so
    /// every scheme is available).
    ///
    /// # Panics
    ///
    /// Panics when `points` is empty or contains non-finite coordinates.
    pub fn build(points: Vec<Point>) -> Self {
        NwcIndex::build_with(points, IndexConfig::default())
    }

    /// Builds with explicit configuration.
    pub fn build_with(points: Vec<Point>, config: IndexConfig) -> Self {
        assert!(!points.is_empty(), "cannot index an empty dataset");
        let bounds = Rect::bounding(points.iter().copied()).expect("non-empty");
        let tree = if config.bulk_load {
            RStarTree::bulk_load_with_params(&points, config.tree_params)
        } else {
            let mut t = RStarTree::with_params(config.tree_params);
            for (i, &p) in points.iter().enumerate() {
                t.insert(i as u32, p)
                    .expect("fresh in-memory tree is never read-only");
            }
            t
        };
        let grid = config
            .grid_cell_size
            .map(|cell| DensityGrid::from_cell_size(grid_bounds(&bounds), cell, &points));
        let iwp = config.build_iwp.then(|| IwpIndex::build(&tree));
        NwcIndex {
            live: vec![true; points.len()],
            live_count: points.len(),
            points,
            bounds,
            tree,
            grid,
            iwp,
        }
    }

    /// Builds an index over pre-built entries whose object ids are
    /// assigned by the caller (the sharded index stores **global** ids
    /// in every shard tree, so cross-shard candidate groups merge
    /// without translation). The id → location table is sized by the
    /// largest id; ids absent from `entries` are dead slots, exactly as
    /// after [`NwcIndex::open_disk`] on a tree with removals.
    ///
    /// `config.bulk_load` is ignored (entries always bulk-load: STR's
    /// stable sorts make the result a pure function of the entry
    /// sequence, which the sharded K=1 fast path relies on).
    ///
    /// # Panics
    ///
    /// Panics when `entries` is empty or contains non-finite points.
    pub(crate) fn from_entries(entries: Vec<nwc_rtree::Entry>, config: IndexConfig) -> Self {
        assert!(!entries.is_empty(), "cannot index an empty entry set");
        let max_id = entries.iter().map(|e| e.id).max().expect("non-empty") as usize;
        let mut points = vec![Point::new(0.0, 0.0); max_id + 1];
        let mut live = vec![false; max_id + 1];
        for e in &entries {
            assert!(e.point.is_finite(), "cannot index non-finite point {:?}", e.point);
            points[e.id as usize] = e.point;
            live[e.id as usize] = true;
        }
        let live_points: Vec<Point> = entries.iter().map(|e| e.point).collect();
        let bounds = Rect::bounding(live_points.iter().copied()).expect("non-empty");
        let live_count = entries.len();
        let tree = RStarTree::bulk_load_entries(entries, config.tree_params);
        let grid = config
            .grid_cell_size
            .map(|cell| DensityGrid::from_cell_size(grid_bounds(&bounds), cell, &live_points));
        let iwp = config.build_iwp.then(|| IwpIndex::build(&tree));
        NwcIndex {
            points,
            live,
            live_count,
            bounds,
            tree,
            grid,
            iwp,
        }
    }

    /// Saves the R\*-tree to an on-disk page file (see
    /// [`RStarTree::save_to_path`]). The density grid and IWP
    /// augmentation are derived structures and are rebuilt at open.
    pub fn save_tree(&self, path: impl AsRef<Path>) -> Result<(), DiskError> {
        self.tree.save_to_path(path)
    }

    /// As [`NwcIndex::save_tree`], assigning page ids according to
    /// `layout` (see [`PageLayout`]). [`PageLayout::Clustered`] places
    /// sibling leaves on consecutive pages so the readahead of
    /// [`DiskIndexConfig::prefetch`] coalesces into fewer, longer
    /// vectored reads. Answers and logical I/O are identical under
    /// every layout.
    pub fn save_tree_with_layout(
        &self,
        path: impl AsRef<Path>,
        layout: PageLayout,
    ) -> Result<(), DiskError> {
        self.tree.save_to_path_with_layout(path, layout)
    }

    /// As [`NwcIndex::save_tree`], but writes a *writable* (v2) page
    /// file: reopened with [`NwcIndex::open_disk`], the index accepts
    /// [`NwcIndex::insert`] / [`NwcIndex::remove`], with durability
    /// through [`NwcIndex::commit`]'s copy-on-write shadow paging (see
    /// [`nwc_rtree::disk`], "Writable mode").
    pub fn save_tree_writable(&self, path: impl AsRef<Path>) -> Result<(), DiskError> {
        self.tree.save_to_path_writable(path)
    }

    /// As [`NwcIndex::save_tree_writable`], assigning page ids
    /// according to `layout` (see [`PageLayout`]).
    pub fn save_tree_writable_with_layout(
        &self,
        path: impl AsRef<Path>,
        layout: PageLayout,
    ) -> Result<(), DiskError> {
        self.tree.save_to_path_writable_with_layout(path, layout)
    }

    /// Opens a page file written by [`NwcIndex::save_tree`] as a
    /// disk-backed index: node accesses fault pages in through a buffer
    /// pool (misses are physical, checksum-verified page reads; the
    /// pool capacity — possibly tightened by
    /// [`DiskIndexConfig::memory_budget_bytes`] — bounds the resident
    /// decoded nodes). A file written by [`NwcIndex::save_tree`] opens
    /// read-only — [`NwcIndex::insert`] / [`NwcIndex::remove`] return
    /// [`IndexUpdateError::ReadOnly`] — while one written by
    /// [`NwcIndex::save_tree_writable`] accepts updates, committed
    /// durably through [`NwcIndex::commit`].
    ///
    /// The point table, bounds, density grid and IWP augmentation are
    /// reconstructed from the stored tree; none of that setup work is
    /// charged — the index is returned with cold, zeroed I/O and buffer
    /// counters.
    pub fn open_disk(
        path: impl AsRef<Path>,
        config: DiskIndexConfig,
    ) -> Result<NwcIndex, IndexOpenError> {
        let tree = RStarTree::open_from_path_with(path, config.disk_options())?;
        Self::finish_open(tree, config)
    }

    /// As [`NwcIndex::open_disk`], over any [`PageStore`] implementation
    /// — an in-memory store in tests, or a fault-injecting wrapper in
    /// chaos suites. The open path itself has no retry machinery in
    /// front of it; arm rate-based fault plans only after the index is
    /// open.
    pub fn open_disk_from_store(
        store: Box<dyn PageStore>,
        config: DiskIndexConfig,
    ) -> Result<NwcIndex, IndexOpenError> {
        let tree = RStarTree::open_from_store_with(store, config.disk_options())?;
        Self::finish_open(tree, config)
    }

    fn finish_open(tree: RStarTree, config: DiskIndexConfig) -> Result<NwcIndex, IndexOpenError> {
        if tree.is_empty() {
            return Err(IndexOpenError::EmptyDataset);
        }
        // Rebuild the id → location table from the leaves (uncharged).
        let entries: Vec<_> = tree.iter_entries().collect();
        let max_id = entries.iter().map(|e| e.id).max().expect("non-empty") as usize;
        let mut points = vec![Point::new(0.0, 0.0); max_id + 1];
        let mut live = vec![false; max_id + 1];
        for e in &entries {
            points[e.id as usize] = e.point;
            live[e.id as usize] = true;
        }
        let live_points: Vec<Point> = entries.iter().map(|e| e.point).collect();
        let bounds = tree.mbr().expect("non-empty tree has an MBR");
        let grid = config
            .grid_cell_size
            .map(|cell| DensityGrid::from_cell_size(grid_bounds(&bounds), cell, &live_points));
        let iwp = config.build_iwp.then(|| IwpIndex::build(&tree));
        // Whatever the derived-structure builds touched, the caller gets
        // a cold index: zero I/O charged, empty buffer pool.
        tree.stats().reset();
        if let Some(storage) = tree.storage() {
            storage.reset();
        }
        Ok(NwcIndex {
            live_count: entries.len(),
            points,
            live,
            bounds,
            tree,
            grid,
            iwp,
        })
    }

    /// The id → location table (object id = position). After removals
    /// this still contains the removed locations; see
    /// [`NwcIndex::is_live`].
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Whether the object with this id is currently indexed.
    pub fn is_live(&self, id: u32) -> bool {
        self.live.get(id as usize).copied().unwrap_or(false)
    }

    /// Number of live indexed objects.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// Whether the index is empty (never true — construction rejects
    /// empty datasets — but kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Tight bounding box of the dataset.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// The underlying instrumented R\*-tree.
    pub fn tree(&self) -> &RStarTree {
        &self.tree
    }

    /// The DEP density grid, when built.
    pub fn grid(&self) -> Option<&DensityGrid> {
        self.grid.as_ref()
    }

    /// The IWP augmentation, when built.
    pub fn iwp(&self) -> Option<&IwpIndex> {
        self.iwp.as_ref()
    }

    /// Replaces the density grid with one of a different cell size,
    /// keeping the tree and IWP augmentation (used by the Figure 9
    /// grid-size sweep, which varies only the grid).
    pub fn rebuild_grid(&mut self, cell_size: f64) {
        let live_points: Vec<Point> = self
            .points
            .iter()
            .zip(&self.live)
            .filter(|&(_, &alive)| alive)
            .map(|(&p, _)| p)
            .collect();
        self.grid = Some(DensityGrid::from_cell_size(
            grid_bounds(&self.bounds),
            cell_size,
            &live_points,
        ));
    }

    // ------------------------------------------------------------------
    // Dynamic updates.
    //
    // The NWC paper works over static datasets, but a deployed index
    // must absorb churn (shops open and close). Updates keep the tree
    // (R* insert/delete) and the density grid in sync; the IWP pointer
    // augmentation is positional and is invalidated instead — call
    // [`NwcIndex::rebuild_iwp`] before the next IWP/NWC* query.
    // ------------------------------------------------------------------

    /// Adds an object, returning its id. Invalidates the IWP
    /// augmentation (if any) until [`NwcIndex::rebuild_iwp`]. On a
    /// *writable* disk-backed index the tree mutation lands in the
    /// in-memory overlay — call [`NwcIndex::commit`] to make it
    /// durable; on a read-only one this returns
    /// [`IndexUpdateError::ReadOnly`] with every structure untouched.
    pub fn insert(&mut self, point: Point) -> Result<u32, IndexUpdateError> {
        assert!(point.is_finite(), "cannot index non-finite point {point:?}");
        let id = u32::try_from(self.points.len()).expect("object id overflow");
        // The tree mutates first: if it refuses, no derived structure
        // has been touched and the index stays consistent.
        self.tree.insert(id, point)?;
        self.points.push(point);
        self.live.push(true);
        self.live_count += 1;
        self.bounds = self.bounds.expand_to(point);
        if let Some(grid) = &mut self.grid {
            grid.add_point(&point);
        }
        self.iwp = None;
        Ok(id)
    }

    /// As [`NwcIndex::insert`], but the object id is assigned by the
    /// caller (the sharded index allocates ids globally so shards never
    /// collide). The id must not be live in this index. The id → point
    /// table grows to cover `id`, leaving any intervening ids dead.
    pub(crate) fn insert_assigned(
        &mut self,
        id: u32,
        point: Point,
    ) -> Result<(), IndexUpdateError> {
        assert!(point.is_finite(), "cannot index non-finite point {point:?}");
        assert!(!self.is_live(id), "id {id} is already live in this shard");
        self.tree.insert(id, point)?;
        if self.points.len() <= id as usize {
            self.points.resize(id as usize + 1, Point::new(0.0, 0.0));
            self.live.resize(id as usize + 1, false);
        }
        self.points[id as usize] = point;
        self.live[id as usize] = true;
        self.live_count += 1;
        self.bounds = self.bounds.expand_to(point);
        if let Some(grid) = &mut self.grid {
            grid.add_point(&point);
        }
        self.iwp = None;
        Ok(())
    }

    /// Removes the object with the given id. Returns `Ok(false)` when
    /// the id is unknown or was already removed, and
    /// [`IndexUpdateError::ReadOnly`] — with every structure untouched —
    /// on a read-only disk-backed index (a writable one mutates its
    /// overlay, like [`NwcIndex::insert`]). Invalidates the IWP
    /// augmentation (if any).
    pub fn remove(&mut self, id: u32) -> Result<bool, IndexUpdateError> {
        let Some(&point) = self.points.get(id as usize) else {
            return Ok(false);
        };
        if !self.live[id as usize] {
            return Ok(false);
        }
        if !self.tree.delete(id, point)? {
            return Ok(false); // should not happen for a live id
        }
        self.live[id as usize] = false;
        self.live_count -= 1;
        if let Some(grid) = &mut self.grid {
            grid.remove_point(&point);
        }
        self.iwp = None;
        Ok(true)
    }

    /// Rebuilds the IWP augmentation after updates. A no-op cost-wise
    /// compared to queries only when batched — rebuild once per update
    /// batch, not per update.
    pub fn rebuild_iwp(&mut self) {
        self.iwp = Some(IwpIndex::build(&self.tree));
    }

    /// Durably commits every pending [`NwcIndex::insert`] /
    /// [`NwcIndex::remove`] of a *writable* disk-backed index: dirty
    /// tree nodes are shadow-paged to disk and the committed root flips
    /// atomically (see [`nwc_rtree::RStarTree::commit`]). A crash at
    /// any point leaves the page file opening as exactly the old or the
    /// new tree. No-op `Ok` on an in-memory index and on a clean tree;
    /// [`IndexUpdateError::ReadOnly`] on a read-only disk-backed index.
    ///
    /// A commit that actually flushed dirty nodes invalidates the IWP
    /// augmentation (like [`NwcIndex::insert`]): shadow paging assigns
    /// fresh page ids to the flushed nodes, and the IWP's leaf pointers
    /// are positional. Call [`NwcIndex::rebuild_iwp`] before the next
    /// IWP/NWC* query.
    pub fn commit(&mut self) -> Result<(), IndexUpdateError> {
        let dirty = self
            .tree
            .storage()
            .is_some_and(|s| s.dirty_nodes() > 0);
        self.tree.commit().map_err(IndexUpdateError::from)?;
        if dirty {
            self.iwp = None;
        }
        Ok(())
    }
}

impl std::fmt::Debug for NwcIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NwcIndex")
            .field("len", &self.len())
            .field("tree_height", &self.tree.height())
            .field("grid", &self.grid.as_ref().map(|g| g.cells_per_side()))
            .field("iwp", &self.iwp.is_some())
            .finish()
    }
}

/// The grid covers the paper's normalized space when the data fits in
/// it, else the data's own bounding box (slightly inflated so border
/// points fall inside cells, not on the open edge). `pub(crate)` so the
/// sharded index builds its *global* density grid with the same rule.
pub(crate) fn grid_bounds(data_bounds: &Rect) -> Rect {
    let space = Rect::new(Point::new(0.0, 0.0), Point::new(10_000.0, 10_000.0));
    if space.contains_rect(data_bounds) {
        space
    } else {
        let pad_x = (data_bounds.width() * 1e-9).max(1e-9);
        let pad_y = (data_bounds.height() * 1e-9).max(1e-9);
        data_bounds.inflate(pad_x, pad_y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwc_geom::pt;

    fn pts() -> Vec<Point> {
        (0..300)
            .map(|i| pt(((i * 97) % 1000) as f64, ((i * 71) % 1000) as f64))
            .collect()
    }

    #[test]
    fn default_build_has_everything() {
        let idx = NwcIndex::build(pts());
        assert_eq!(idx.len(), 300);
        assert!(idx.grid().is_some());
        assert!(idx.iwp().is_some());
        nwc_rtree::validate::check_invariants(idx.tree()).unwrap();
    }

    #[test]
    fn lean_build_skips_structures() {
        let cfg = IndexConfig {
            grid_cell_size: None,
            build_iwp: false,
            ..Default::default()
        };
        let idx = NwcIndex::build_with(pts(), cfg);
        assert!(idx.grid().is_none());
        assert!(idx.iwp().is_none());
    }

    #[test]
    fn insertion_build_matches_bulk_contents() {
        let cfg = IndexConfig {
            bulk_load: false,
            ..Default::default()
        };
        let idx = NwcIndex::build_with(pts(), cfg);
        assert_eq!(idx.tree().len(), 300);
        nwc_rtree::validate::check_invariants(idx.tree()).unwrap();
        nwc_rtree::validate::check_fill(idx.tree()).unwrap();
    }

    #[test]
    fn grid_covers_out_of_space_data() {
        let points = vec![pt(-50.0, 0.0), pt(20_000.0, 30_000.0), pt(5.0, 5.0)];
        let idx = NwcIndex::build(points);
        let g = idx.grid().unwrap();
        assert_eq!(g.total_objects(), 3);
        assert_eq!(g.count_upper_bound(&idx.bounds()), 3);
    }

    #[test]
    #[should_panic]
    fn empty_dataset_rejected() {
        NwcIndex::build(Vec::new());
    }
}
