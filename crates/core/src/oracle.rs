//! Brute-force reference implementations.
//!
//! These enumerate the same candidate-window family the paper's
//! algorithm searches (objects on quadrant-determined vertical edges,
//! partner objects on horizontal edges — the family Lemma 1 proves
//! sufficient), with none of the index structures or pruning. They are
//! `O(N³)`-ish and exist purely as ground truth for the test suites.

use crate::query::{KnwcQuery, NwcQuery};
use nwc_geom::window::candidate_window;
use nwc_geom::{Point, Quadrant, Rect};
use nwc_rtree::Entry;

/// A scored group produced by the oracle.
#[derive(Clone, Debug)]
pub struct OracleGroup {
    /// Objects ordered by ascending distance to the query point.
    pub objects: Vec<Entry>,
    /// Measure score.
    pub distance: f64,
    /// Discovery window.
    pub window: Rect,
}

impl OracleGroup {
    /// Sorted object ids (set identity).
    pub fn id_set(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.objects.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids
    }
}

/// Every distinct qualified candidate group, exhaustively enumerated.
///
/// For each object `p` (vertical-edge generator, quadrant rules of §3.1)
/// and each partner object `p'` on the admissible horizontal side, the
/// candidate window is materialized, counted by linear scan, and — when
/// qualified — its `n` nearest objects are scored. Duplicate sets keep
/// their best score.
pub fn enumerate_groups(points: &[Point], query: &NwcQuery) -> Vec<OracleGroup> {
    let q = query.q;
    let spec = query.spec;
    let n = query.n;
    let entries: Vec<Entry> = points
        .iter()
        .enumerate()
        .map(|(i, &p)| Entry::new(i as u32, p))
        .collect();

    let mut best_by_set: std::collections::HashMap<Vec<u32>, OracleGroup> =
        std::collections::HashMap::new();
    for p in &entries {
        let quad = Quadrant::of(&q, &p.point);
        for partner in &entries {
            // Admissible partners sit on the correct side of p and within
            // the ±w band (exactly the objects a search-region query
            // would return to the algorithm).
            let dy = partner.point.y - p.point.y;
            let admissible = if quad.partner_on_top_edge() {
                (0.0..=spec.w).contains(&dy)
            } else {
                (-spec.w..=0.0).contains(&dy)
            };
            if !admissible {
                continue;
            }
            let win = candidate_window(&p.point, partner.point.y, quad, &spec);
            // The window must actually contain the partner's y-edge use
            // case; p is always inside by construction. Partners whose
            // own point is outside the window still define a valid edge
            // only when inside — mirror the algorithm, which only sees
            // partners inside SR_p (hence inside in x too).
            if !win.contains_point(&partner.point) {
                continue;
            }
            let mut inside: Vec<Entry> = entries
                .iter()
                .copied()
                .filter(|e| win.contains_point(&e.point))
                .collect();
            if inside.len() < n {
                continue;
            }
            inside.sort_by(|a, b| {
                a.point
                    .dist2(&q)
                    .total_cmp(&b.point.dist2(&q))
                    .then_with(|| a.id.cmp(&b.id))
            });
            inside.truncate(n);
            let score = query.measure.score(&q, &inside, &spec);
            let mut ids: Vec<u32> = inside.iter().map(|e| e.id).collect();
            ids.sort_unstable();
            let better = best_by_set
                .get(&ids)
                .is_none_or(|g| score < g.distance);
            if better {
                best_by_set.insert(
                    ids,
                    OracleGroup {
                        objects: inside,
                        distance: score,
                        window: win,
                    },
                );
            }
        }
    }
    let mut groups: Vec<OracleGroup> = best_by_set.into_values().collect();
    groups.sort_by(|a, b| {
        a.distance
            .total_cmp(&b.distance)
            .then_with(|| a.id_set().cmp(&b.id_set()))
    });
    groups
}

/// Brute-force NWC: the best candidate group, or `None` when no window
/// holds `n` objects.
pub fn nwc_brute_force(points: &[Point], query: &NwcQuery) -> Option<OracleGroup> {
    enumerate_groups(points, query).into_iter().next()
}

/// Brute-force kNWC: greedy selection over ascending-distance candidate
/// groups, keeping a group when it shares at most `m` objects with every
/// group already kept.
///
/// Note: the paper's incremental Steps 1–5 can diverge from plain greedy
/// when a late-arriving close group evicts one that had itself evicted
/// others; the integration tests therefore compare postconditions and
/// the first group, not exact set equality (see `tests/knwc_properties`).
pub fn knwc_brute_force(points: &[Point], query: &KnwcQuery) -> Vec<OracleGroup> {
    let candidates = enumerate_groups(points, &query.base);
    let mut picked: Vec<OracleGroup> = Vec::new();
    for cand in candidates {
        if picked.len() == query.k {
            break;
        }
        let ids = cand.id_set();
        let ok = picked.iter().all(|g| {
            let gids = g.id_set();
            let mut i = 0;
            let mut j = 0;
            let mut shared = 0;
            while i < gids.len() && j < ids.len() {
                match gids[i].cmp(&ids[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        shared += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
            shared <= query.m
        });
        if ok {
            picked.push(cand);
        }
    }
    picked
}

/// Recall of a (possibly partial or `(1+ε)`-approximate) NWC answer
/// against the exact reference answer, with canonical tie handling.
///
/// Both answers are `(score, sorted ids)`; pass `None` for "no group
/// found". The exact optimum can be reached through several distinct
/// equal-score groups (the canonical tie-break picks one of them by id
/// set, but any of them is an optimal answer), so a returned group
/// whose **score** matches the exact optimum counts as full recall
/// regardless of which tied set it is. Otherwise recall is the id
/// overlap fraction `|exact ∩ got| / n`. A missing answer scores 0; a
/// claimed answer where the exact path proves none exists also scores
/// 0 (it cannot be a qualified group); two empty answers agree at 1.
pub fn nwc_recall(exact: Option<(f64, &[u32])>, got: Option<(f64, &[u32])>) -> f64 {
    match (exact, got) {
        (None, None) => 1.0,
        (None, Some(_)) | (Some(_), None) => 0.0,
        (Some((exact_score, exact_ids)), Some((got_score, got_ids))) => {
            // Score tie (up to fp noise): an equally good group, full
            // recall no matter which tied id set the traversal kept.
            let tol = 1e-9 * exact_score.abs().max(1.0);
            if got_score <= exact_score + tol {
                return 1.0;
            }
            if exact_ids.is_empty() {
                return 0.0;
            }
            sorted_overlap(exact_ids, got_ids) as f64 / exact_ids.len() as f64
        }
    }
}

/// `|a ∩ b|` for sorted id slices.
fn sorted_overlap(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Scheme, WindowSpec};
    use nwc_geom::pt;

    #[test]
    fn oracle_finds_obvious_cluster() {
        let pts = vec![
            pt(10.0, 10.0),
            pt(11.0, 11.0),
            pt(12.0, 10.5),
            pt(90.0, 90.0),
        ];
        let query = NwcQuery::new(pt(0.0, 0.0), WindowSpec::square(5.0), 3);
        let g = nwc_brute_force(&pts, &query).unwrap();
        assert_eq!(g.id_set(), vec![0, 1, 2]);
    }

    #[test]
    fn oracle_none_when_no_window_qualifies() {
        let pts = vec![pt(0.0, 0.0), pt(100.0, 100.0)];
        let query = NwcQuery::new(pt(0.0, 0.0), WindowSpec::square(5.0), 2);
        assert!(nwc_brute_force(&pts, &query).is_none());
    }

    #[test]
    fn oracle_matches_algorithm_on_fixed_case() {
        let pts: Vec<_> = (0..60)
            .map(|i| pt(((i * 17) % 97) as f64, ((i * 43) % 89) as f64))
            .collect();
        let idx = crate::NwcIndex::build(pts.clone());
        for n in [2usize, 4, 8] {
            let query = NwcQuery::new(pt(48.0, 44.0), WindowSpec::square(12.0), n);
            let want = nwc_brute_force(&pts, &query);
            let got = idx.nwc(&query, Scheme::NWC_STAR);
            match (want, got) {
                (None, None) => {}
                (Some(w), Some(g)) => {
                    assert!((w.distance - g.distance).abs() < 1e-9, "n={n}")
                }
                (w, g) => panic!("n={n}: oracle {w:?} vs algo {g:?}"),
            }
        }
    }

    #[test]
    fn recall_handles_ties_misses_and_partial_overlap() {
        // Both empty: agreement.
        assert_eq!(nwc_recall(None, None), 1.0);
        // One-sided answers: zero either way.
        assert_eq!(nwc_recall(Some((2.0, &[1, 2][..])), None), 0.0);
        assert_eq!(nwc_recall(None, Some((2.0, &[1, 2][..]))), 0.0);
        // Equal score, different id set: a canonical tie, full recall.
        assert_eq!(
            nwc_recall(Some((2.0, &[1, 2][..])), Some((2.0, &[3, 4][..]))),
            1.0
        );
        // Strictly better-than-claimed-exact cannot lose recall either.
        assert_eq!(
            nwc_recall(Some((2.0, &[1, 2][..])), Some((1.5, &[3, 4][..]))),
            1.0
        );
        // Worse score: overlap fraction.
        assert_eq!(
            nwc_recall(Some((2.0, &[1, 2, 3, 4][..])), Some((3.0, &[2, 3, 9, 11][..]))),
            0.5
        );
        // Worse score, disjoint sets: zero.
        assert_eq!(
            nwc_recall(Some((2.0, &[1, 2][..])), Some((5.0, &[7, 8][..]))),
            0.0
        );
    }

    #[test]
    fn knwc_oracle_groups_are_compatible() {
        let pts: Vec<_> = (0..40)
            .map(|i| pt(((i * 29) % 61) as f64, ((i * 13) % 53) as f64))
            .collect();
        let query = crate::KnwcQuery::new(pt(30.0, 25.0), WindowSpec::square(10.0), 3, 4, 1);
        let groups = knwc_brute_force(&pts, &query);
        assert!(!groups.is_empty());
        for w in groups.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }
}
