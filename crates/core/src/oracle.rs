//! Brute-force reference implementations.
//!
//! These enumerate the same candidate-window family the paper's
//! algorithm searches (objects on quadrant-determined vertical edges,
//! partner objects on horizontal edges — the family Lemma 1 proves
//! sufficient), with none of the index structures or pruning. They are
//! `O(N³)`-ish and exist purely as ground truth for the test suites.

use crate::query::{KnwcQuery, NwcQuery};
use nwc_geom::window::candidate_window;
use nwc_geom::{Point, Quadrant, Rect};
use nwc_rtree::Entry;

/// A scored group produced by the oracle.
#[derive(Clone, Debug)]
pub struct OracleGroup {
    /// Objects ordered by ascending distance to the query point.
    pub objects: Vec<Entry>,
    /// Measure score.
    pub distance: f64,
    /// Discovery window.
    pub window: Rect,
}

impl OracleGroup {
    /// Sorted object ids (set identity).
    pub fn id_set(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.objects.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids
    }
}

/// Every distinct qualified candidate group, exhaustively enumerated.
///
/// For each object `p` (vertical-edge generator, quadrant rules of §3.1)
/// and each partner object `p'` on the admissible horizontal side, the
/// candidate window is materialized, counted by linear scan, and — when
/// qualified — its `n` nearest objects are scored. Duplicate sets keep
/// their best score.
pub fn enumerate_groups(points: &[Point], query: &NwcQuery) -> Vec<OracleGroup> {
    let q = query.q;
    let spec = query.spec;
    let n = query.n;
    let entries: Vec<Entry> = points
        .iter()
        .enumerate()
        .map(|(i, &p)| Entry::new(i as u32, p))
        .collect();

    let mut best_by_set: std::collections::HashMap<Vec<u32>, OracleGroup> =
        std::collections::HashMap::new();
    for p in &entries {
        let quad = Quadrant::of(&q, &p.point);
        for partner in &entries {
            // Admissible partners sit on the correct side of p and within
            // the ±w band (exactly the objects a search-region query
            // would return to the algorithm).
            let dy = partner.point.y - p.point.y;
            let admissible = if quad.partner_on_top_edge() {
                (0.0..=spec.w).contains(&dy)
            } else {
                (-spec.w..=0.0).contains(&dy)
            };
            if !admissible {
                continue;
            }
            let win = candidate_window(&p.point, partner.point.y, quad, &spec);
            // The window must actually contain the partner's y-edge use
            // case; p is always inside by construction. Partners whose
            // own point is outside the window still define a valid edge
            // only when inside — mirror the algorithm, which only sees
            // partners inside SR_p (hence inside in x too).
            if !win.contains_point(&partner.point) {
                continue;
            }
            let mut inside: Vec<Entry> = entries
                .iter()
                .copied()
                .filter(|e| win.contains_point(&e.point))
                .collect();
            if inside.len() < n {
                continue;
            }
            inside.sort_by(|a, b| {
                a.point
                    .dist2(&q)
                    .total_cmp(&b.point.dist2(&q))
                    .then_with(|| a.id.cmp(&b.id))
            });
            inside.truncate(n);
            let score = query.measure.score(&q, &inside, &spec);
            let mut ids: Vec<u32> = inside.iter().map(|e| e.id).collect();
            ids.sort_unstable();
            let better = best_by_set
                .get(&ids)
                .is_none_or(|g| score < g.distance);
            if better {
                best_by_set.insert(
                    ids,
                    OracleGroup {
                        objects: inside,
                        distance: score,
                        window: win,
                    },
                );
            }
        }
    }
    let mut groups: Vec<OracleGroup> = best_by_set.into_values().collect();
    groups.sort_by(|a, b| {
        a.distance
            .total_cmp(&b.distance)
            .then_with(|| a.id_set().cmp(&b.id_set()))
    });
    groups
}

/// Brute-force NWC: the best candidate group, or `None` when no window
/// holds `n` objects.
pub fn nwc_brute_force(points: &[Point], query: &NwcQuery) -> Option<OracleGroup> {
    enumerate_groups(points, query).into_iter().next()
}

/// Brute-force kNWC: greedy selection over ascending-distance candidate
/// groups, keeping a group when it shares at most `m` objects with every
/// group already kept.
///
/// Note: the paper's incremental Steps 1–5 can diverge from plain greedy
/// when a late-arriving close group evicts one that had itself evicted
/// others; the integration tests therefore compare postconditions and
/// the first group, not exact set equality (see `tests/knwc_properties`).
pub fn knwc_brute_force(points: &[Point], query: &KnwcQuery) -> Vec<OracleGroup> {
    let candidates = enumerate_groups(points, &query.base);
    let mut picked: Vec<OracleGroup> = Vec::new();
    for cand in candidates {
        if picked.len() == query.k {
            break;
        }
        let ids = cand.id_set();
        let ok = picked.iter().all(|g| {
            let gids = g.id_set();
            let mut i = 0;
            let mut j = 0;
            let mut shared = 0;
            while i < gids.len() && j < ids.len() {
                match gids[i].cmp(&ids[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        shared += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
            shared <= query.m
        });
        if ok {
            picked.push(cand);
        }
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Scheme, WindowSpec};
    use nwc_geom::pt;

    #[test]
    fn oracle_finds_obvious_cluster() {
        let pts = vec![
            pt(10.0, 10.0),
            pt(11.0, 11.0),
            pt(12.0, 10.5),
            pt(90.0, 90.0),
        ];
        let query = NwcQuery::new(pt(0.0, 0.0), WindowSpec::square(5.0), 3);
        let g = nwc_brute_force(&pts, &query).unwrap();
        assert_eq!(g.id_set(), vec![0, 1, 2]);
    }

    #[test]
    fn oracle_none_when_no_window_qualifies() {
        let pts = vec![pt(0.0, 0.0), pt(100.0, 100.0)];
        let query = NwcQuery::new(pt(0.0, 0.0), WindowSpec::square(5.0), 2);
        assert!(nwc_brute_force(&pts, &query).is_none());
    }

    #[test]
    fn oracle_matches_algorithm_on_fixed_case() {
        let pts: Vec<_> = (0..60)
            .map(|i| pt(((i * 17) % 97) as f64, ((i * 43) % 89) as f64))
            .collect();
        let idx = crate::NwcIndex::build(pts.clone());
        for n in [2usize, 4, 8] {
            let query = NwcQuery::new(pt(48.0, 44.0), WindowSpec::square(12.0), n);
            let want = nwc_brute_force(&pts, &query);
            let got = idx.nwc(&query, Scheme::NWC_STAR);
            match (want, got) {
                (None, None) => {}
                (Some(w), Some(g)) => {
                    assert!((w.distance - g.distance).abs() < 1e-9, "n={n}")
                }
                (w, g) => panic!("n={n}: oracle {w:?} vs algo {g:?}"),
            }
        }
    }

    #[test]
    fn knwc_oracle_groups_are_compatible() {
        let pts: Vec<_> = (0..40)
            .map(|i| pt(((i * 29) % 61) as f64, ((i * 13) % 53) as f64))
            .collect();
        let query = crate::KnwcQuery::new(pt(30.0, 25.0), WindowSpec::square(10.0), 3, 4, 1);
        let groups = knwc_brute_force(&pts, &query);
        assert!(!groups.is_empty());
        for w in groups.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }
}
