//! Query descriptions and validation.

use crate::DistanceMeasure;
use nwc_geom::{window::WindowSpec, Point};
use nwc_rtree::DiskReadError;
use std::fmt;

/// A malformed query, or (for the `try_*` query APIs over a disk-backed
/// index) a query whose evaluation hit an unrecoverable disk read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// `n` (or `k`) was zero.
    ZeroCount(&'static str),
    /// The query location is NaN/infinite.
    NonFiniteLocation,
    /// kNWC overlap bound `m` is at least `n`, which makes "distinct
    /// groups" meaningless (any group duplicates are allowed).
    OverlapBoundTooLarge {
        /// Requested overlap bound.
        m: usize,
        /// Group size.
        n: usize,
    },
    /// A page read failed (and exhausted its retry budget) while the
    /// search was running over a disk-backed index. The index remains
    /// usable — the failing page is quarantined, every pin taken by the
    /// search has been released — but this query has no answer.
    Io(DiskReadError),
    /// The query's deadline passed mid-search (cooperative cancellation
    /// via [`CancelToken`](nwc_rtree::CancelToken)). The index and the
    /// calling thread remain fully usable: every pin is released and no
    /// state is torn down — the query simply has no answer.
    Deadline,
    /// The query was stopped by an external
    /// [`CancelFlag`](nwc_rtree::CancelFlag) (client disconnect, load
    /// shed mid-batch, server drain). Same guarantees as
    /// [`QueryError::Deadline`].
    Cancelled,
    /// An approximation factor `ε` was NaN, infinite, or negative
    /// (rejected by [`Approx::new`](crate::Approx::new) and by the wire
    /// protocol at decode time).
    InvalidEpsilon,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::ZeroCount(what) => write!(f, "{what} must be at least 1"),
            QueryError::NonFiniteLocation => write!(f, "query location must be finite"),
            QueryError::OverlapBoundTooLarge { m, n } => {
                write!(f, "overlap bound m = {m} must be smaller than group size n = {n}")
            }
            QueryError::Io(e) => write!(f, "disk read failed during search: {e}"),
            QueryError::Deadline => write!(f, "query deadline exceeded during search"),
            QueryError::Cancelled => write!(f, "query cancelled by caller"),
            QueryError::InvalidEpsilon => {
                write!(f, "approximation factor must be finite and non-negative")
            }
        }
    }
}

impl std::error::Error for QueryError {}

impl From<nwc_rtree::TreeError> for QueryError {
    fn from(e: nwc_rtree::TreeError) -> Self {
        match e {
            nwc_rtree::TreeError::Io(e) => QueryError::Io(e),
            nwc_rtree::TreeError::Cancelled(nwc_rtree::CancelKind::Deadline) => {
                QueryError::Deadline
            }
            nwc_rtree::TreeError::Cancelled(nwc_rtree::CancelKind::Stopped) => {
                QueryError::Cancelled
            }
            // The anytime paths intercept I/O-budget trips before they
            // become errors; this arm only fires when a legacy `try_*`
            // API is handed a Budget-derived token, where "budget spent"
            // is closest to a spent deadline.
            nwc_rtree::TreeError::Cancelled(nwc_rtree::CancelKind::IoBudget) => {
                QueryError::Deadline
            }
            // The search path never mutates; a ReadOnly refusal cannot
            // reach a query. Map it to its page-less Io shape rather
            // than panicking so the conversion stays total.
            other => QueryError::Io(DiskReadError {
                page: u32::MAX,
                detail: other.to_string(),
            }),
        }
    }
}

/// An `NWC(q, l, w, n)` query (paper Definition 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NwcQuery {
    /// The query location `q`.
    pub q: Point,
    /// The window dimensions `l × w`.
    pub spec: WindowSpec,
    /// The number of objects to retrieve, `n`.
    pub n: usize,
    /// The distance measure scoring object groups (default
    /// [`DistanceMeasure::Max`]).
    pub measure: DistanceMeasure,
}

impl NwcQuery {
    /// Creates a query with the default distance measure.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0` or `q` is non-finite (use
    /// [`NwcQuery::try_new`] for fallible construction).
    pub fn new(q: Point, spec: WindowSpec, n: usize) -> Self {
        NwcQuery::try_new(q, spec, n, DistanceMeasure::default()).unwrap()
    }

    /// Fallible constructor with an explicit measure.
    pub fn try_new(
        q: Point,
        spec: WindowSpec,
        n: usize,
        measure: DistanceMeasure,
    ) -> Result<Self, QueryError> {
        if n == 0 {
            return Err(QueryError::ZeroCount("n"));
        }
        if !q.is_finite() {
            return Err(QueryError::NonFiniteLocation);
        }
        Ok(NwcQuery { q, spec, n, measure })
    }

    /// Returns a copy using `measure` instead of the default.
    pub fn with_measure(mut self, measure: DistanceMeasure) -> Self {
        self.measure = measure;
        self
    }
}

/// A `kNWC(k, q, l, w, n, m)` query (paper Definition 3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KnwcQuery {
    /// The underlying NWC parameters.
    pub base: NwcQuery,
    /// Number of object groups to retrieve.
    pub k: usize,
    /// Maximum number of identical objects allowed between any two
    /// returned groups.
    pub m: usize,
}

impl KnwcQuery {
    /// Creates a kNWC query.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters; use [`KnwcQuery::try_new`] to
    /// handle errors.
    pub fn new(q: Point, spec: WindowSpec, n: usize, k: usize, m: usize) -> Self {
        KnwcQuery::try_new(q, spec, n, k, m, DistanceMeasure::default()).unwrap()
    }

    /// Fallible constructor with an explicit measure.
    pub fn try_new(
        q: Point,
        spec: WindowSpec,
        n: usize,
        k: usize,
        m: usize,
        measure: DistanceMeasure,
    ) -> Result<Self, QueryError> {
        let base = NwcQuery::try_new(q, spec, n, measure)?;
        if k == 0 {
            return Err(QueryError::ZeroCount("k"));
        }
        if m >= n {
            return Err(QueryError::OverlapBoundTooLarge { m, n });
        }
        Ok(KnwcQuery { base, k, m })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwc_geom::pt;

    #[test]
    fn valid_query() {
        let q = NwcQuery::new(pt(1.0, 2.0), WindowSpec::square(8.0), 8);
        assert_eq!(q.n, 8);
        assert_eq!(q.measure, DistanceMeasure::Max);
        let q2 = q.with_measure(DistanceMeasure::Avg);
        assert_eq!(q2.measure, DistanceMeasure::Avg);
    }

    #[test]
    fn zero_n_rejected() {
        let e = NwcQuery::try_new(pt(0.0, 0.0), WindowSpec::square(1.0), 0, DistanceMeasure::Max);
        assert_eq!(e.unwrap_err(), QueryError::ZeroCount("n"));
    }

    #[test]
    fn non_finite_location_rejected() {
        let e = NwcQuery::try_new(
            pt(f64::NAN, 0.0),
            WindowSpec::square(1.0),
            1,
            DistanceMeasure::Max,
        );
        assert_eq!(e.unwrap_err(), QueryError::NonFiniteLocation);
    }

    #[test]
    fn knwc_overlap_bound() {
        let e = KnwcQuery::try_new(
            pt(0.0, 0.0),
            WindowSpec::square(1.0),
            4,
            2,
            4,
            DistanceMeasure::Max,
        );
        assert!(matches!(
            e.unwrap_err(),
            QueryError::OverlapBoundTooLarge { m: 4, n: 4 }
        ));
        assert!(KnwcQuery::try_new(
            pt(0.0, 0.0),
            WindowSpec::square(1.0),
            4,
            2,
            3,
            DistanceMeasure::Max
        )
        .is_ok());
    }

    #[test]
    fn error_messages_render() {
        assert!(QueryError::ZeroCount("n").to_string().contains('n'));
        assert!(QueryError::NonFiniteLocation.to_string().contains("finite"));
        assert!(QueryError::OverlapBoundTooLarge { m: 5, n: 4 }
            .to_string()
            .contains("m = 5"));
    }
}
