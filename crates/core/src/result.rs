//! Query results and per-query search statistics.

use nwc_geom::Rect;
use nwc_rtree::Entry;

/// The answer to an NWC query: the best object group found.
#[derive(Clone, Debug)]
pub struct NwcResult {
    /// The `n` objects, ordered by ascending distance to the query
    /// location.
    pub objects: Vec<Entry>,
    /// Their score under the query's distance measure (`dist_best`).
    pub distance: f64,
    /// The qualified window the group was discovered in.
    pub window: Rect,
    /// What the search did to find it.
    pub stats: SearchStats,
}

impl NwcResult {
    /// The object ids of the group, in result order.
    pub fn ids(&self) -> Vec<u32> {
        self.objects.iter().map(|e| e.id).collect()
    }
}

/// Counters describing one NWC/kNWC search.
///
/// `io_total` is the paper's metric (R\*-tree nodes visited); the rest
/// break it down and expose the work profile the optimizations target.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Total R\*-tree node accesses (the paper's "I/O cost").
    pub io_total: u64,
    /// Node accesses spent expanding the best-first traversal.
    pub io_traversal: u64,
    /// Node accesses spent answering window queries for search regions.
    pub io_window_queries: u64,
    /// Of `io_total`, accesses satisfied by the buffer pool without
    /// physical I/O. Always 0 on an in-memory (arena) tree; on a
    /// disk-backed tree, `io_total - buffer_hits` is the physical page
    /// read count. The io counters themselves are buffering-independent.
    pub buffer_hits: u64,
    /// Objects dequeued from the priority queue.
    pub objects_visited: u64,
    /// Window queries actually issued.
    pub window_queries: u64,
    /// Window queries skipped by SRR (empty reduced region).
    pub skipped_by_srr: u64,
    /// Window queries cancelled by DEP (grid bound below `n`).
    pub skipped_by_dep: u64,
    /// Index nodes pruned by DIP.
    pub nodes_pruned_by_dip: u64,
    /// Index nodes pruned by DEP.
    pub nodes_pruned_by_dep: u64,
    /// Candidate windows evaluated.
    pub candidate_windows: u64,
    /// Candidate windows that were qualified (held ≥ n objects).
    pub qualified_windows: u64,
    /// Times `dist_best` (or the kNWC group set) improved.
    pub best_updates: u64,
    /// Page-read re-attempts this query issued on a disk-backed tree
    /// (always 0 on an arena tree or a healthy store). Retries sit
    /// outside the `io_*` counters: logical I/O is identical with and
    /// without faults.
    pub retries: u64,
    /// Failed page-read attempts this query recovered from by retrying.
    pub transient_errors: u64,
}

impl SearchStats {
    /// Merges another stats record into this one (used when averaging
    /// over the paper's 25 query repetitions).
    pub fn accumulate(&mut self, other: &SearchStats) {
        self.io_total += other.io_total;
        self.io_traversal += other.io_traversal;
        self.io_window_queries += other.io_window_queries;
        self.buffer_hits += other.buffer_hits;
        self.objects_visited += other.objects_visited;
        self.window_queries += other.window_queries;
        self.skipped_by_srr += other.skipped_by_srr;
        self.skipped_by_dep += other.skipped_by_dep;
        self.nodes_pruned_by_dip += other.nodes_pruned_by_dip;
        self.nodes_pruned_by_dep += other.nodes_pruned_by_dep;
        self.candidate_windows += other.candidate_windows;
        self.qualified_windows += other.qualified_windows;
        self.best_updates += other.best_updates;
        self.retries += other.retries;
        self.transient_errors += other.transient_errors;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_sums_fields() {
        let mut a = SearchStats {
            io_total: 10,
            window_queries: 2,
            ..Default::default()
        };
        let b = SearchStats {
            io_total: 5,
            window_queries: 1,
            qualified_windows: 7,
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.io_total, 15);
        assert_eq!(a.window_queries, 3);
        assert_eq!(a.qualified_windows, 7);
    }
}
