//! The distance measures of §2.1 (Equations 1–4).
//!
//! The problem transformation works for any measure lower-bounded by
//! `MINDIST(q, qwin)`; all four measures proposed by the paper satisfy
//! that bound and are supported interchangeably.

use nwc_geom::{window::WindowSpec, Point, Rect};
use nwc_rtree::Entry;

/// How the distance between the query point and an object group is
/// scored (paper §2.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub enum DistanceMeasure {
    /// Equation (1): distance to the closest of the `n` objects.
    Min,
    /// Equation (2): distance to the farthest of the `n` objects — the
    /// default, because it bounds the user's total walking radius.
    #[default]
    Max,
    /// Equation (3): average distance over the `n` objects.
    Avg,
    /// Equation (4): `MINDIST` to the nearest `l × w` window containing
    /// all `n` objects (the "nearest window distance").
    NearestWindow,
}

impl DistanceMeasure {
    /// All measures, for exhaustive testing.
    pub const ALL: [DistanceMeasure; 4] = [
        DistanceMeasure::Min,
        DistanceMeasure::Max,
        DistanceMeasure::Avg,
        DistanceMeasure::NearestWindow,
    ];

    /// Scores a group of objects against `q`.
    ///
    /// `spec` is needed only by [`DistanceMeasure::NearestWindow`], which
    /// minimizes `MINDIST` over every `l × w` window containing the
    /// group (computed in closed form from the group's bounding box).
    ///
    /// # Panics
    ///
    /// Panics on an empty group.
    pub fn score(&self, q: &Point, group: &[Entry], spec: &WindowSpec) -> f64 {
        assert!(!group.is_empty(), "cannot score an empty object group");
        match self {
            DistanceMeasure::Min => group
                .iter()
                .map(|e| e.point.dist(q))
                .fold(f64::INFINITY, f64::min),
            DistanceMeasure::Max => group
                .iter()
                .map(|e| e.point.dist(q))
                .fold(0.0, f64::max),
            DistanceMeasure::Avg => {
                group.iter().map(|e| e.point.dist(q)).sum::<f64>() / group.len() as f64
            }
            DistanceMeasure::NearestWindow => nearest_window_distance(q, group, spec),
        }
    }
}

/// `MINDIST(q, ·)` minimized over every `l × w` window containing all of
/// `group` (Equation 4), in closed form.
///
/// Windows containing the group have their min corner `(x₀, y₀)` ranging
/// over `[B.max.x − l, B.min.x] × [B.max.y − w, B.min.y]` where `B` is
/// the group's bounding box; the horizontal and vertical `MINDIST`
/// components minimize independently over those intervals.
pub fn nearest_window_distance(q: &Point, group: &[Entry], spec: &WindowSpec) -> f64 {
    let bbox = Rect::bounding(group.iter().map(|e| e.point)).expect("non-empty group");
    debug_assert!(
        bbox.width() <= spec.l + 1e-9 && bbox.height() <= spec.w + 1e-9,
        "group does not fit in an {} × {} window: {bbox:?}",
        spec.l,
        spec.w
    );
    let hx = axis_gap(q.x, bbox.max.x - spec.l, bbox.min.x, spec.l);
    let vy = axis_gap(q.y, bbox.max.y - spec.w, bbox.min.y, spec.w);
    (hx * hx + vy * vy).sqrt()
}

/// Minimal 1-D `MINDIST` component for a window `[x₀, x₀ + len]` with
/// `x₀` free over `[lo, hi]`.
fn axis_gap(q: f64, lo: f64, hi: f64, len: f64) -> f64 {
    debug_assert!(lo <= hi + 1e-9);
    if q < lo {
        // Window cannot slide left enough: gap from q to the leftmost
        // possible window start.
        lo - q
    } else if q > hi + len {
        // Window cannot slide right enough.
        q - (hi + len)
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwc_geom::pt;

    fn entries(pts: &[(f64, f64)]) -> Vec<Entry> {
        pts.iter()
            .enumerate()
            .map(|(i, &(x, y))| Entry::new(i as u32, pt(x, y)))
            .collect()
    }

    const SPEC: WindowSpec = WindowSpec { l: 10.0, w: 10.0 };

    #[test]
    fn min_max_avg_basic() {
        let q = pt(0.0, 0.0);
        let g = entries(&[(3.0, 4.0), (6.0, 8.0)]); // dists 5 and 10
        assert_eq!(DistanceMeasure::Min.score(&q, &g, &SPEC), 5.0);
        assert_eq!(DistanceMeasure::Max.score(&q, &g, &SPEC), 10.0);
        assert_eq!(DistanceMeasure::Avg.score(&q, &g, &SPEC), 7.5);
    }

    #[test]
    fn nearest_window_zero_when_window_can_reach_q() {
        let q = pt(0.0, 0.0);
        let g = entries(&[(3.0, 3.0), (5.0, 5.0)]);
        // A 10×10 window can cover both the group and q.
        assert_eq!(DistanceMeasure::NearestWindow.score(&q, &g, &SPEC), 0.0);
    }

    #[test]
    fn nearest_window_far_group() {
        let q = pt(0.0, 0.0);
        let g = entries(&[(30.0, 0.0), (34.0, 0.0)]);
        // Best window starts at x₀ = 24 (must reach x = 34): gap = 24.
        assert_eq!(DistanceMeasure::NearestWindow.score(&q, &g, &SPEC), 24.0);
    }

    #[test]
    fn nearest_window_is_min_over_sampled_windows() {
        let q = pt(7.0, -3.0);
        let g = entries(&[(20.0, 8.0), (24.0, 13.0), (22.0, 10.0)]);
        let closed = DistanceMeasure::NearestWindow.score(&q, &g, &SPEC);
        let bbox = Rect::bounding(g.iter().map(|e| e.point)).unwrap();
        let mut best = f64::INFINITY;
        for i in 0..=50 {
            for j in 0..=50 {
                let x0 = (bbox.max.x - SPEC.l)
                    + (bbox.min.x - (bbox.max.x - SPEC.l)) * i as f64 / 50.0;
                let y0 = (bbox.max.y - SPEC.w)
                    + (bbox.min.y - (bbox.max.y - SPEC.w)) * j as f64 / 50.0;
                let win = Rect::new(pt(x0, y0), pt(x0 + SPEC.l, y0 + SPEC.w));
                best = best.min(win.mindist(&q));
            }
        }
        assert!((closed - best).abs() < 1e-6, "closed {closed} vs sampled {best}");
    }

    #[test]
    fn all_measures_lower_bounded_by_any_containing_window() {
        // The problem transformation requires MINDIST(q, win) ≤ measure.
        let q = pt(1.0, 2.0);
        let g = entries(&[(15.0, 18.0), (18.0, 12.0), (12.0, 14.0)]);
        let win = Rect::new(pt(10.0, 10.0), pt(20.0, 20.0));
        for m in [DistanceMeasure::Min, DistanceMeasure::Max, DistanceMeasure::Avg] {
            assert!(
                m.score(&q, &g, &SPEC) + 1e-9 >= win.mindist(&q),
                "{m:?} violates the MINDIST lower bound"
            );
        }
        // NearestWindow is the *minimum* over containing windows, so it
        // lower-bounds the MINDIST of this particular containing window
        // and equals the MINDIST of the best one.
        let nw = DistanceMeasure::NearestWindow.score(&q, &g, &SPEC);
        assert!(nw <= win.mindist(&q) + 1e-9);
    }

    #[test]
    fn singleton_group() {
        let q = pt(0.0, 0.0);
        let g = entries(&[(3.0, 4.0)]);
        for m in DistanceMeasure::ALL {
            let s = m.score(&q, &g, &SPEC);
            if m == DistanceMeasure::NearestWindow {
                assert_eq!(s, 0.0); // a window can slide to cover q
            } else {
                assert_eq!(s, 5.0);
            }
        }
    }

    #[test]
    #[should_panic]
    fn empty_group_panics() {
        DistanceMeasure::Max.score(&pt(0.0, 0.0), &[], &SPEC);
    }
}
