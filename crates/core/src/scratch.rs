//! Reusable per-query working memory.
//!
//! A single NWC search allocates in four places: the best-first frontier
//! heap, the window-query neighbor buffer, the per-object distance
//! ranking built by the candidate scan, and (for kNWC) the sorted id
//! buffer used to check group identity. All four are sized by the data
//! around the query, not by the answer, so across a query workload the
//! same few buffers are allocated and dropped thousands of times.
//!
//! [`QueryScratch`] owns all of them. Thread one through the `*_with`
//! query variants ([`NwcIndex::nwc_with`](crate::NwcIndex::nwc_with),
//! [`NwcIndex::knwc_with`](crate::NwcIndex::knwc_with), …) and a *warm*
//! query — one whose buffers have reached their workload high-water mark
//! — performs no per-node or per-visited-object heap allocation; the
//! only remaining allocations build the returned result itself.
//!
//! Scratches are cheap to create but meant to live long: one per worker
//! thread (as the [`engine`](crate::engine) does), or one per query loop.
//! A scratch carries no query state between runs — reusing one never
//! changes results or I/O counts, which `tests/engine_equivalence.rs`
//! asserts across every scheme.

use nwc_rtree::{BrowserScratch, Entry, ObjectId};

/// Reusable buffers for the NWC/kNWC query hot path. See the module
/// docs; obtain one with [`QueryScratch::new`] and pass it to the
/// `*_with` query variants.
#[derive(Default)]
pub struct QueryScratch {
    /// Best-first frontier heap storage (lives in `nwc-rtree`).
    pub(crate) browser: BrowserScratch,
    /// Window-query results for the object currently being scanned.
    pub(crate) neighbors: Vec<Entry>,
    /// Distance ranking `(dist², id, entry)` of the current neighbors.
    pub(crate) by_dist: Vec<(f64, u32, Entry)>,
    /// Sorted object-id buffer for group set-identity checks (kNWC).
    pub(crate) ids: Vec<ObjectId>,
}

impl QueryScratch {
    /// An empty scratch. The first query through it allocates; later
    /// queries reuse the grown buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total buffer slots currently retained across all buffers
    /// (diagnostics / tests; counts capacity, not live contents).
    pub fn retained_capacity(&self) -> usize {
        self.browser.heap_capacity()
            + self.neighbors.capacity()
            + self.by_dist.capacity()
            + self.ids.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty_and_reports_capacity() {
        let mut s = QueryScratch::new();
        assert_eq!(s.retained_capacity(), 0);
        s.neighbors.reserve(16);
        assert!(s.retained_capacity() >= 16);
    }
}
