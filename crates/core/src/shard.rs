//! Spatial sharding and the scatter-gather NWC/kNWC planner.
//!
//! The single-tree search prunes with one global `dist_best` bound that
//! tightens only as fast as one best-first descent can go. This module
//! cuts the dataset into K spatial tiles (the bulk loader's own STR
//! discipline, [`nwc_rtree::str_partition`]), builds one R\*-tree per
//! tile, and browses **all shards concurrently** while *sharing* the
//! bound: every candidate group any shard scores is published into one
//! atomic `dist_best` (f64-bits CAS-min — for non-negative floats the
//! bit pattern orders exactly like the value), and every shard's
//! SRR/DIP pruning reads the shared bound before each expand. One
//! shard's early answer shrinks every other shard's search region, so
//! the scatter is work-efficient, not just parallel.
//!
//! # Why the answer equals the single-tree oracle
//!
//! - **Traversal**: every object lives in exactly one shard, so the
//!   union of the per-shard best-first streams visits each object once,
//!   exactly like the single tree (order differs; see below).
//! - **Window queries**: a candidate window is evaluated against the
//!   union of all shard trees' window-query results. Window queries
//!   append, shard contents are disjoint, and the candidate scan is
//!   invariant to neighbor *order* given the same neighbor *set* — so
//!   each evaluated window sees exactly the single-tree neighbor set.
//! - **SRR/DIP bounds are shard-agnostic**: both prune against
//!   `dist_best`, a property of the *query answer*, not of any tree.
//!   Sharing the bound can only make pruning earlier, never wrong,
//!   because every published score is the score of a real group.
//! - **DEP**: density counts must cover the *whole* dataset, so a K>1
//!   sharded index keeps one **global** density grid (per-shard grids
//!   would undercount and prune wrongly). IWP stays per-shard: the
//!   owner shard's leaf-anchored incremental query runs on its own
//!   tree; the other shards answer from their roots.
//! - **Determinism of the merge**: all sinks are *tie-inclusive*
//!   (pruning thresholds sit one ulp above the bound) and resolve
//!   equal-score groups canonically by `(sorted ids, window)` — the
//!   same canonical order the brute-force oracle sorts by. The merged
//!   answer is therefore a function of the offered group *set*, not of
//!   shard interleaving or thread count.
//!
//! The kNWC scatter shares the buffered greedy top-k state
//! ([`GroupsCore`]) behind a mutex with a lock-free cached threshold.
//! Its §3.4 distance pruning inherits the paper's (documented) cascade
//! caveat, which under K>1 additionally makes the *pruned* variant
//! order-sensitive on adversarial conflict structures; the unpruned
//! [`ShardedNwcIndex::try_knwc_exact`] is exactly order-independent.
//!
//! # K = 1 fast path
//!
//! A 1-shard index is built (or opened) exactly like an unsharded
//! [`NwcIndex`] — STR partitioning with K = 1 returns the input
//! unchanged — and every query delegates to the single-tree code, so
//! answers *and* [`SearchStats`] are bit-identical to the unsharded
//! path.
//!
//! # One buffer-pool budget
//!
//! Disk-backed shards live in per-shard page files under one directory
//! manifest. One total pool capacity is budgeted across the shard pools
//! with [`nwc_store::split_capacity`] — the same monotone split the
//! lock-striped pool uses internally, so growing the total budget never
//! shrinks any shard's share.
//!
//! Everything outside `#[cfg(test)]` in this module is panic-free by
//! policy (same bar as the serving layer): failures surface as typed
//! errors, and a scheme requesting a structure the index was built
//! without (density grid, IWP) degrades by skipping that optimization
//! instead of panicking — the K = 1 delegation path keeps the
//! single-tree panic semantics.

use crate::algo::{budget_error, canonical_less, tie_inclusive, BestSink, SearchEnd};
use crate::anytime::{AnytimeKnwc, AnytimeNwc, Approx, BudgetSpent};
use crate::candidates::{scan_candidates, GroupSink};
use crate::engine::scatter_map;
use crate::index::{grid_bounds, DiskIndexConfig, IndexConfig, IndexOpenError, IndexUpdateError};
use crate::knwc::{GroupsCore, KnwcResult};
use crate::query::{KnwcQuery, NwcQuery, QueryError};
use crate::result::{NwcResult, SearchStats};
use crate::scheme::Scheme;
use crate::scratch::QueryScratch;
use crate::NwcIndex;
use nwc_geom::window::{
    extended_mbr, node_window_lower_bound, reduced_search_region, search_region,
};
use nwc_geom::{Point, Quadrant, Rect};
use nwc_grid::DensityGrid;
use nwc_rtree::{
    str_partition, BrowseItem, Budget, CancelKind, CancelToken, DiskError, Entry, ObjectId,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Sentinel in the id → shard owner table for dead/unknown ids.
const NO_OWNER: u32 = u32::MAX;

/// Manifest file name inside a sharded index directory.
const MANIFEST: &str = "MANIFEST";

/// A spatially sharded NWC index: K disjoint tiles, one R\*-tree each,
/// queried by the scatter-gather planner with a shared `dist_best`
/// bound. See the module docs.
pub struct ShardedNwcIndex {
    shards: Vec<NwcIndex>,
    /// Global density grid (K > 1 only; a 1-shard index delegates to
    /// its shard's own grid).
    grid: Option<DensityGrid>,
    /// id → owning shard (NO_OWNER = dead).
    owner: Vec<u32>,
    /// Next globally unique object id for [`ShardedNwcIndex::insert`].
    next_id: u32,
    bounds: Rect,
    threads: usize,
}

/// Per-shard detail of one scatter-gather NWC search.
#[derive(Clone, Debug)]
pub struct ShardedNwcAnswer {
    /// The merged answer (`None` when no window qualifies anywhere).
    pub result: Option<NwcResult>,
    /// Exact aggregate of every shard's counters.
    pub stats: SearchStats,
    /// Per-shard counters, indexed by shard (window-query I/O a shard
    /// issues against *other* shards' trees is attributed to the shard
    /// running the search, so the aggregate is exact).
    pub per_shard: Vec<SearchStats>,
}

/// Per-shard detail of one scatter-gather kNWC search.
#[derive(Clone, Debug)]
pub struct ShardedKnwcAnswer {
    /// The merged top-k answer.
    pub result: KnwcResult,
    /// Per-shard counters, indexed by shard.
    pub per_shard: Vec<SearchStats>,
}

/// Per-shard detail of one *anytime* scatter-gather NWC search: the
/// merged best-so-far answer with its combined quality bound, plus
/// which shards could not finish. A degraded shard never fails the
/// query — its unexplored territory is folded into
/// [`AnytimeNwc::lower_bound`] instead.
#[derive(Clone, Debug)]
pub struct ShardedAnytimeNwc {
    /// The merged answer, bound, and aggregate spend.
    pub anytime: AnytimeNwc,
    /// Per-shard counters, indexed by shard (zeroed for a shard that
    /// failed before reporting).
    pub per_shard: Vec<SearchStats>,
    /// `(shard, error)` for every shard whose search failed outright;
    /// each contributes the `MINDIST` from the query point to its
    /// bounds (minus the window slack) to the merged lower bound.
    pub degraded: Vec<(usize, QueryError)>,
}

impl ShardedAnytimeNwc {
    /// Whether every shard ran its frontier dry: the answer is exact
    /// for `ε = 0`, `(1+ε)`-approximate otherwise.
    pub fn is_complete(&self) -> bool {
        self.anytime.is_complete() && self.degraded.is_empty()
    }
}

/// Per-shard detail of one anytime scatter-gather kNWC search (the
/// kNWC counterpart of [`ShardedAnytimeNwc`]).
#[derive(Clone, Debug)]
pub struct ShardedAnytimeKnwc {
    /// The merged groups, bound, and aggregate spend.
    pub anytime: AnytimeKnwc,
    /// Per-shard counters, indexed by shard.
    pub per_shard: Vec<SearchStats>,
    /// `(shard, error)` for every shard whose search failed outright.
    pub degraded: Vec<(usize, QueryError)>,
}

impl ShardedAnytimeKnwc {
    /// Whether every shard ran its frontier dry.
    pub fn is_complete(&self) -> bool {
        self.anytime.is_complete() && self.degraded.is_empty()
    }
}

/// One or more shards failed mid-scatter. The gather still completes:
/// every healthy shard's counters are retained, every pin taken by the
/// failed shard's search has been released, and the failing pages are
/// quarantined — the index remains fully usable.
#[derive(Debug)]
pub struct ShardScatterError {
    /// `(shard, error)` for every shard that failed.
    pub failures: Vec<(usize, QueryError)>,
    /// `(shard, stats)` for every shard that completed.
    pub completed: Vec<(usize, SearchStats)>,
}

impl std::fmt::Display for ShardScatterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} of {} shards failed during scatter-gather",
            self.failures.len(),
            self.failures.len() + self.completed.len()
        )?;
        if let Some((shard, e)) = self.failures.first() {
            write!(f, " (shard {shard}: {e})")?;
        }
        Ok(())
    }
}

impl std::error::Error for ShardScatterError {}

impl From<ShardScatterError> for QueryError {
    /// Collapses to the first failing shard's error (deadline/cancel
    /// outrank I/O so a shed query never masquerades as a disk fault).
    fn from(e: ShardScatterError) -> Self {
        let mut first: Option<QueryError> = None;
        for (_, err) in e.failures {
            match err {
                QueryError::Deadline | QueryError::Cancelled => return err,
                other => {
                    if first.is_none() {
                        first = Some(other);
                    }
                }
            }
        }
        first.unwrap_or(QueryError::Cancelled)
    }
}

/// An error assembling a sharded index from pre-built shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardAssemblyError {
    /// No shards were given.
    NoShards,
    /// Two shards both hold a live object with this id.
    DuplicateId(u32),
    /// Every given shard is empty.
    Empty,
}

impl std::fmt::Display for ShardAssemblyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardAssemblyError::NoShards => write!(f, "no shards given"),
            ShardAssemblyError::DuplicateId(id) => {
                write!(f, "object id {id} is live in two shards")
            }
            ShardAssemblyError::Empty => write!(f, "every shard is empty"),
        }
    }
}

impl std::error::Error for ShardAssemblyError {}

/// An error opening or saving a sharded index directory.
#[derive(Debug)]
pub enum ShardedStoreError {
    /// Directory or manifest I/O failed.
    Io(std::io::Error),
    /// The manifest exists but does not parse.
    Manifest(String),
    /// One shard's page file failed to open.
    Open {
        /// Shard ordinal.
        shard: usize,
        /// The underlying open failure.
        error: IndexOpenError,
    },
    /// One shard's page file failed to save.
    Save {
        /// Shard ordinal.
        shard: usize,
        /// The underlying save failure.
        error: DiskError,
    },
}

impl std::fmt::Display for ShardedStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardedStoreError::Io(e) => write!(f, "sharded index directory I/O failed: {e}"),
            ShardedStoreError::Manifest(what) => write!(f, "bad sharded index manifest: {what}"),
            ShardedStoreError::Open { shard, error } => {
                write!(f, "shard {shard} failed to open: {error}")
            }
            ShardedStoreError::Save { shard, error } => {
                write!(f, "shard {shard} failed to save: {error}")
            }
        }
    }
}

impl std::error::Error for ShardedStoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardedStoreError::Io(e) => Some(e),
            ShardedStoreError::Manifest(_) => None,
            ShardedStoreError::Open { error, .. } => Some(error),
            ShardedStoreError::Save { error, .. } => Some(error),
        }
    }
}

impl From<std::io::Error> for ShardedStoreError {
    fn from(e: std::io::Error) -> Self {
        ShardedStoreError::Io(e)
    }
}

impl ShardedNwcIndex {
    // ------------------------------------------------------------------
    // Construction.
    // ------------------------------------------------------------------

    /// Builds a sharded index over `points` with at most `shards` tiles
    /// and default per-shard configuration.
    ///
    /// # Panics
    ///
    /// Panics when `points` is empty or contains non-finite coordinates
    /// (construction shares [`NwcIndex::build`]'s contract; queries are
    /// panic-free).
    pub fn build(points: Vec<Point>, shards: usize) -> Self {
        Self::build_with(points, shards, IndexConfig::default())
    }

    /// As [`ShardedNwcIndex::build`] with explicit per-shard
    /// configuration. Fewer than `shards` tiles are built when the
    /// dataset is smaller than the tile count (tiles are never empty).
    /// With `shards <= 1` the single shard is built exactly like an
    /// unsharded [`NwcIndex::build_with`] — bit-identical tree, grid
    /// and IWP — and every query delegates to it.
    pub fn build_with(points: Vec<Point>, shards: usize, config: IndexConfig) -> Self {
        let threads = default_threads();
        let n = points.len();
        if shards <= 1 || n <= 1 {
            let single = NwcIndex::build_with(points, config);
            return Self::from_single(single, threads);
        }
        let bounds = Rect::bounding(points.iter().copied()).unwrap_or_else(|| {
            // Unreachable (n >= 2 here); an empty Rect would only arise
            // from an empty iterator, which build_with rejects above.
            Rect::new(Point::new(0.0, 0.0), Point::new(0.0, 0.0))
        });
        let entries: Vec<Entry> = points
            .iter()
            .enumerate()
            .map(|(i, &p)| Entry::new(i as ObjectId, p))
            .collect();
        let tiles = str_partition(entries, shards);
        let shard_cfg = IndexConfig {
            grid_cell_size: None, // the grid is global — see module docs
            ..config
        };
        let mut owner = vec![NO_OWNER; n];
        let shard_indexes: Vec<NwcIndex> = tiles
            .into_iter()
            .enumerate()
            .map(|(s, tile)| {
                for e in &tile {
                    owner[e.id as usize] = s as u32;
                }
                NwcIndex::from_entries(tile, shard_cfg)
            })
            .collect();
        let grid = config
            .grid_cell_size
            .map(|cell| DensityGrid::from_cell_size(grid_bounds(&bounds), cell, &points));
        ShardedNwcIndex {
            shards: shard_indexes,
            grid,
            owner,
            next_id: n as u32,
            bounds,
            threads,
        }
    }

    /// Assembles a sharded index from pre-built shards — custom tilings,
    /// or shards opened through instrumented stores (the fault-injection
    /// tests use this). Shards must hold pairwise-disjoint object ids.
    /// The global density grid is rebuilt from the shard point tables
    /// when `grid_cell_size` is given (ignored for a single shard,
    /// which delegates to its own structures).
    pub fn from_shards(
        shards: Vec<NwcIndex>,
        grid_cell_size: Option<f64>,
    ) -> Result<Self, ShardAssemblyError> {
        let threads = default_threads();
        if shards.is_empty() {
            return Err(ShardAssemblyError::NoShards);
        }
        if shards.len() == 1 {
            let mut it = shards.into_iter();
            let Some(single) = it.next() else {
                return Err(ShardAssemblyError::NoShards); // unreachable: len checked
            };
            return Ok(Self::from_single(single, threads));
        }
        let mut all_points = Vec::new();
        let mut max_id = 0u32;
        for shard in &shards {
            for (id, &p) in shard.points().iter().enumerate() {
                if shard.is_live(id as u32) {
                    all_points.push(p);
                    max_id = max_id.max(id as u32);
                }
            }
        }
        let Some(bounds) = Rect::bounding(all_points.iter().copied()) else {
            return Err(ShardAssemblyError::Empty);
        };
        let mut owner = vec![NO_OWNER; max_id as usize + 1];
        for (s, shard) in shards.iter().enumerate() {
            for id in 0..shard.points().len() as u32 {
                if shard.is_live(id) {
                    if owner[id as usize] != NO_OWNER {
                        return Err(ShardAssemblyError::DuplicateId(id));
                    }
                    owner[id as usize] = s as u32;
                }
            }
        }
        let grid = grid_cell_size
            .map(|cell| DensityGrid::from_cell_size(grid_bounds(&bounds), cell, &all_points));
        Ok(ShardedNwcIndex {
            next_id: owner.len() as u32,
            shards,
            grid,
            owner,
            bounds,
            threads,
        })
    }

    fn from_single(single: NwcIndex, threads: usize) -> Self {
        let bounds = single.bounds();
        let mut owner = vec![NO_OWNER; single.points().len()];
        for (id, slot) in owner.iter_mut().enumerate() {
            if single.is_live(id as u32) {
                *slot = 0;
            }
        }
        let next_id = owner.len() as u32;
        ShardedNwcIndex {
            shards: vec![single],
            grid: None,
            owner,
            next_id,
            bounds,
            threads,
        }
    }

    /// Sets the scatter width: how many OS threads browse shards
    /// concurrently (capped at the shard count; 1 = fully sequential
    /// and deterministic even for pruned kNWC). Defaults to the
    /// available parallelism.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    // ------------------------------------------------------------------
    // Accessors.
    // ------------------------------------------------------------------

    /// Number of shards (tiles actually built — at most the requested
    /// count, fewer on tiny datasets).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard indexes, in tile order.
    pub fn shards(&self) -> &[NwcIndex] {
        &self.shards
    }

    /// Configured scatter width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total live objects across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Whether the index holds no live objects.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bounding box of the full dataset.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// The density grid DEP prunes with: the global grid for K > 1, the
    /// single shard's own grid for K = 1. `None` when built without.
    pub fn grid(&self) -> Option<&DensityGrid> {
        match self.grid.as_ref() {
            Some(g) => Some(g),
            None => self.shards.first().and_then(|s| s.grid()),
        }
    }

    /// Whether every shard currently has its IWP augmentation (shards
    /// invalidate it on mutation; see [`ShardedNwcIndex::rebuild_iwp`]).
    pub fn iwp_ready(&self) -> bool {
        self.shards.iter().all(|s| s.iwp().is_some())
    }

    /// The shard owning object `id`, if it is live.
    pub fn owner_of(&self, id: u32) -> Option<usize> {
        match self.owner.get(id as usize) {
            Some(&s) if s != NO_OWNER => Some(s as usize),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // NWC queries.
    // ------------------------------------------------------------------

    /// Answers `NWC(q, l, w, n)` by scatter-gather. Equivalent to the
    /// single-tree [`NwcIndex::try_nwc`] on the same dataset (same
    /// answer under the canonical tie-break), differing only in I/O
    /// accounting for K > 1.
    pub fn try_nwc(
        &self,
        query: &NwcQuery,
        scheme: Scheme,
    ) -> Result<Option<NwcResult>, QueryError> {
        Ok(self.try_nwc_full(query, scheme)?.0)
    }

    /// As [`ShardedNwcIndex::try_nwc`], also returning the aggregate
    /// search statistics even when the query has no answer.
    pub fn try_nwc_full(
        &self,
        query: &NwcQuery,
        scheme: Scheme,
    ) -> Result<(Option<NwcResult>, SearchStats), QueryError> {
        self.try_nwc_full_cancel(query, scheme, &mut QueryScratch::new(), &CancelToken::none())
    }

    /// As [`ShardedNwcIndex::try_nwc_full`] with a cooperative
    /// [`CancelToken`] (the cancellation contract of
    /// [`NwcIndex::try_nwc_full_cancel`], checked per shard). `scratch`
    /// serves the K = 1 delegation path; a K > 1 scatter gives each
    /// worker its own scratch.
    pub fn try_nwc_full_cancel(
        &self,
        query: &NwcQuery,
        scheme: Scheme,
        scratch: &mut QueryScratch,
        cancel: &CancelToken,
    ) -> Result<(Option<NwcResult>, SearchStats), QueryError> {
        if let [single] = self.shards.as_slice() {
            // K = 1: bit-identical to the unsharded path, stats included.
            return single.try_nwc_full_cancel(query, scheme, scratch, cancel);
        }
        let answer = self.try_nwc_scatter_cancel(query, scheme, cancel)?;
        Ok((answer.result, answer.stats))
    }

    /// The fully detailed scatter: per-shard [`SearchStats`] alongside
    /// the merged answer (the bench harness reports per-shard logical
    /// I/O from this).
    pub fn try_nwc_scatter(
        &self,
        query: &NwcQuery,
        scheme: Scheme,
    ) -> Result<ShardedNwcAnswer, ShardScatterError> {
        self.try_nwc_scatter_cancel(query, scheme, &CancelToken::none())
    }

    /// As [`ShardedNwcIndex::try_nwc_scatter`] with cancellation.
    pub fn try_nwc_scatter_cancel(
        &self,
        query: &NwcQuery,
        scheme: Scheme,
        cancel: &CancelToken,
    ) -> Result<ShardedNwcAnswer, ShardScatterError> {
        if let [single] = self.shards.as_slice() {
            let (result, stats) = single
                .try_nwc_full_cancel(query, scheme, &mut QueryScratch::new(), cancel)
                .map_err(|e| ShardScatterError {
                    failures: vec![(0, e)],
                    completed: Vec::new(),
                })?;
            return Ok(ShardedNwcAnswer {
                result,
                stats,
                per_shard: vec![stats],
            });
        }
        // Shared bound: f64 bits under CAS-min. Non-negative doubles
        // order identically to their bit patterns, so fetch_min on the
        // bits IS min on the scores.
        let bound = AtomicU64::new(f64::INFINITY.to_bits());
        let outcome = gather_strict(self.scatter(
            query,
            scheme,
            &Budget::from(cancel.clone()),
            || SharedBestSink {
                bound: &bound,
                shrink: 1.0,
                local: BestSink::new(),
            },
        ))?;
        // Deterministic merge: min score, ties by canonical
        // (sorted ids, window) — independent of shard order.
        let mut best: Option<(f64, Vec<u32>, Vec<Entry>, Rect)> = None;
        for (_, _, sink) in &outcome {
            merge_best(&mut best, &sink.local);
        }
        let mut per_shard = vec![SearchStats::default(); self.shards.len()];
        let mut stats = SearchStats::default();
        for (shard, s, _) in &outcome {
            per_shard[*shard] = *s;
            stats.accumulate(s);
        }
        let result = best.map(|(distance, _, objects, window)| NwcResult {
            objects,
            distance,
            window,
            stats,
        });
        Ok(ShardedNwcAnswer {
            result,
            stats,
            per_shard,
        })
    }

    // ------------------------------------------------------------------
    // Anytime / approximate queries.
    // ------------------------------------------------------------------

    /// Anytime scatter-gather `NWC`: every shard contributes what it
    /// found within `budget`, and a shard that ran out of budget — or
    /// failed outright — **degrades the merged answer's bound instead
    /// of failing the query**.
    ///
    /// Bound merge: a budget-exhausted shard contributes its
    /// slack-adjusted best-first frontier key; a failed shard
    /// contributes the `MINDIST` from the query point to its bounds
    /// minus the window slack (every group it could still hide is
    /// anchored at least that far away); a completed shard contributes
    /// nothing (`+inf`). The merged lower bound is the minimum of those
    /// contributions and the `(1+ε)` certificate `best/(1+ε)`, which is
    /// sound because every group's anchor object lives in exactly one
    /// shard and that shard's search covers it. Groups found by a shard
    /// that later tripped or failed still merge into the answer — they
    /// are real groups regardless of how their shard ended.
    ///
    /// Only the K = 1 delegation path can return `Err` (a lone failing
    /// shard leaves nothing to degrade toward). With [`Approx::exact`]
    /// and [`Budget::none`] the merged answer is identical to
    /// [`ShardedNwcIndex::try_nwc_scatter`].
    pub fn try_nwc_anytime(
        &self,
        query: &NwcQuery,
        scheme: Scheme,
        budget: &Budget,
        approx: Approx,
    ) -> Result<ShardedAnytimeNwc, QueryError> {
        if let [single] = self.shards.as_slice() {
            let anytime = single.try_nwc_anytime_with(
                query,
                scheme,
                &mut QueryScratch::new(),
                budget,
                approx,
            )?;
            let per_shard = vec![anytime.stats];
            return Ok(ShardedAnytimeNwc {
                anytime,
                per_shard,
                degraded: Vec::new(),
            });
        }
        let started = std::time::Instant::now();
        let shrink = approx.shrink();
        let bound = AtomicU64::new(f64::INFINITY.to_bits());
        let outcomes = self.scatter(query, scheme, budget, || SharedBestSink {
            bound: &bound,
            shrink,
            local: BestSink::approx(shrink),
        });
        let slack = crate::anytime::frontier_slack(query.measure, &query.spec);
        let mut per_shard = vec![SearchStats::default(); self.shards.len()];
        let mut stats = SearchStats::default();
        let mut frontier = f64::INFINITY;
        let mut exhausted: Option<CancelKind> = None;
        let mut degraded = Vec::new();
        let mut best: Option<(f64, Vec<u32>, Vec<Entry>, Rect)> = None;
        for o in outcomes {
            merge_best(&mut best, &o.sink.local);
            match o.result {
                Ok((s, end)) => {
                    if let Some(slot) = per_shard.get_mut(o.shard) {
                        *slot = s;
                    }
                    stats.accumulate(&s);
                    if let SearchEnd::Exhausted {
                        kind,
                        frontier: key,
                    } = end
                    {
                        exhausted = prefer_kind(exhausted, kind);
                        frontier =
                            frontier.min(crate::anytime::frontier_lower_bound(key, slack));
                    }
                }
                Err(e) => {
                    frontier = frontier.min(self.shard_fallback_bound(o.shard, query, slack));
                    degraded.push((o.shard, e));
                }
            }
        }
        let dist_best = best.as_ref().map_or(f64::INFINITY, |(d, ..)| *d);
        let lower_bound = crate::anytime::combine_lower_bound(dist_best, shrink, frontier);
        let error_bound = crate::anytime::gap(dist_best, lower_bound);
        let spent = BudgetSpent {
            elapsed_us: u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
            io: stats.io_total,
        };
        let answer = best.map(|(distance, _, objects, window)| NwcResult {
            objects,
            distance,
            window,
            stats,
        });
        Ok(ShardedAnytimeNwc {
            anytime: AnytimeNwc {
                answer,
                stats,
                lower_bound,
                error_bound,
                spent,
                exhausted,
            },
            per_shard,
            degraded,
        })
    }

    /// Anytime scatter-gather `kNWC` (the kNWC counterpart of
    /// [`ShardedNwcIndex::try_nwc_anytime`], pruned semantics as
    /// [`ShardedNwcIndex::try_knwc`]).
    pub fn try_knwc_anytime(
        &self,
        query: &KnwcQuery,
        scheme: Scheme,
        budget: &Budget,
        approx: Approx,
    ) -> Result<ShardedAnytimeKnwc, QueryError> {
        if let [single] = self.shards.as_slice() {
            let anytime = single.try_knwc_anytime_with(
                query,
                scheme,
                &mut QueryScratch::new(),
                budget,
                approx,
            )?;
            let per_shard = vec![anytime.result.stats];
            return Ok(ShardedAnytimeKnwc {
                anytime,
                per_shard,
                degraded: Vec::new(),
            });
        }
        let started = std::time::Instant::now();
        let shrink = approx.shrink();
        let core = Mutex::new(GroupsCore::approx(query.k, query.m, true, shrink));
        let cached = AtomicU64::new(f64::INFINITY.to_bits());
        let outcomes = self.scatter(&query.base, scheme, budget, || SharedGroupsSink {
            core: &core,
            cached: &cached,
            idbuf: Vec::new(),
        });
        let slack = crate::anytime::frontier_slack(query.base.measure, &query.base.spec);
        let mut per_shard = vec![SearchStats::default(); self.shards.len()];
        let mut stats = SearchStats::default();
        let mut frontier = f64::INFINITY;
        let mut exhausted: Option<CancelKind> = None;
        let mut degraded = Vec::new();
        for o in outcomes {
            match o.result {
                Ok((s, end)) => {
                    if let Some(slot) = per_shard.get_mut(o.shard) {
                        *slot = s;
                    }
                    stats.accumulate(&s);
                    if let SearchEnd::Exhausted {
                        kind,
                        frontier: key,
                    } = end
                    {
                        exhausted = prefer_kind(exhausted, kind);
                        frontier =
                            frontier.min(crate::anytime::frontier_lower_bound(key, slack));
                    }
                }
                Err(e) => {
                    frontier =
                        frontier.min(self.shard_fallback_bound(o.shard, &query.base, slack));
                    degraded.push((o.shard, e));
                }
            }
        }
        let core = match core.into_inner() {
            Ok(c) => c,
            Err(poisoned) => poisoned.into_inner(),
        };
        let groups = core.groups();
        let kth = if groups.len() == query.k {
            groups.last().map_or(f64::INFINITY, |g| g.distance)
        } else {
            f64::INFINITY
        };
        let lower_bound = crate::anytime::combine_lower_bound(kth, shrink, frontier);
        let error_bound = crate::anytime::gap(kth, lower_bound);
        let spent = BudgetSpent {
            elapsed_us: u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
            io: stats.io_total,
        };
        Ok(ShardedAnytimeKnwc {
            anytime: AnytimeKnwc {
                result: KnwcResult { groups, stats },
                lower_bound,
                error_bound,
                spent,
                exhausted,
            },
            per_shard,
            degraded,
        })
    }

    /// The bound contribution of a shard that failed before reporting a
    /// frontier: every group it could still hide is anchored inside its
    /// bounds, hence scores at least `MINDIST(q, bounds) - slack`.
    /// Falls back to `0` (the vacuous bound) for an out-of-range shard
    /// index — this module never panics.
    fn shard_fallback_bound(&self, shard: usize, query: &NwcQuery, slack: f64) -> f64 {
        self.shards
            .get(shard)
            .map_or(0.0, |s| (s.bounds().mindist(&query.q) - slack).max(0.0))
    }

    // ------------------------------------------------------------------
    // kNWC queries.
    // ------------------------------------------------------------------

    /// Answers `kNWC(k, q, l, w, n, m)` by scatter-gather with the
    /// §3.4 distance pruning. See the module docs for the pruned
    /// variant's order-sensitivity caveat under K > 1 (run with
    /// `with_threads(1)` for a fully deterministic pruned search).
    pub fn try_knwc(
        &self,
        query: &KnwcQuery,
        scheme: Scheme,
    ) -> Result<KnwcResult, QueryError> {
        self.try_knwc_cancel(query, scheme, &mut QueryScratch::new(), &CancelToken::none())
    }

    /// As [`ShardedNwcIndex::try_knwc`] with cancellation and a scratch
    /// for the K = 1 delegation path.
    pub fn try_knwc_cancel(
        &self,
        query: &KnwcQuery,
        scheme: Scheme,
        scratch: &mut QueryScratch,
        cancel: &CancelToken,
    ) -> Result<KnwcResult, QueryError> {
        if let [single] = self.shards.as_slice() {
            return single.try_knwc_cancel(query, scheme, scratch, cancel);
        }
        Ok(self.knwc_scatter(query, scheme, true, cancel)?.result)
    }

    /// As [`ShardedNwcIndex::try_knwc`] with distance pruning disabled:
    /// every qualified window is considered, so the answer is exactly
    /// the greedy Definition-3 selection — order-independent across any
    /// shard count and thread count (cf. [`NwcIndex::knwc_exact`]).
    pub fn try_knwc_exact(
        &self,
        query: &KnwcQuery,
        scheme: Scheme,
    ) -> Result<KnwcResult, QueryError> {
        if let [single] = self.shards.as_slice() {
            let mut scratch = QueryScratch::new();
            // Delegate through the cancel-free exact path.
            return single.try_knwc_exact_with(query, scheme, &mut scratch);
        }
        Ok(self.knwc_scatter(query, scheme, false, &CancelToken::none())?.result)
    }

    /// The fully detailed kNWC scatter (per-shard counters), pruned.
    pub fn try_knwc_scatter(
        &self,
        query: &KnwcQuery,
        scheme: Scheme,
    ) -> Result<ShardedKnwcAnswer, ShardScatterError> {
        self.knwc_scatter(query, scheme, true, &CancelToken::none())
    }

    fn knwc_scatter(
        &self,
        query: &KnwcQuery,
        scheme: Scheme,
        prune: bool,
        cancel: &CancelToken,
    ) -> Result<ShardedKnwcAnswer, ShardScatterError> {
        if let [single] = self.shards.as_slice() {
            let mut scratch = QueryScratch::new();
            let result = if prune {
                single.try_knwc_cancel(query, scheme, &mut scratch, cancel)
            } else {
                single.try_knwc_exact_with(query, scheme, &mut scratch)
            }
            .map_err(|e| ShardScatterError {
                failures: vec![(0, e)],
                completed: Vec::new(),
            })?;
            let per_shard = vec![result.stats];
            return Ok(ShardedKnwcAnswer { result, per_shard });
        }
        let core = Mutex::new(GroupsCore::new(query.k, query.m, prune));
        let cached = AtomicU64::new(f64::INFINITY.to_bits());
        let outcome = gather_strict(self.scatter(
            &query.base,
            scheme,
            &Budget::from(cancel.clone()),
            || SharedGroupsSink {
                core: &core,
                cached: &cached,
                idbuf: Vec::new(),
            },
        ))?;
        let mut per_shard = vec![SearchStats::default(); self.shards.len()];
        let mut stats = SearchStats::default();
        for (shard, s, _) in &outcome {
            per_shard[*shard] = *s;
            stats.accumulate(s);
        }
        let core = match core.into_inner() {
            Ok(c) => c,
            Err(poisoned) => poisoned.into_inner(),
        };
        Ok(ShardedKnwcAnswer {
            result: KnwcResult {
                groups: core.groups(),
                stats,
            },
            per_shard,
        })
    }

    // ------------------------------------------------------------------
    // The scatter driver.
    // ------------------------------------------------------------------

    /// Runs one per-shard search per shard through the engine's scoped
    /// worker pool ([`scatter_map`]: atomic-cursor distribution, one
    /// warm [`QueryScratch`] per worker). Nothing aborts the gather:
    /// every shard reports its own outcome — complete, budget-exhausted
    /// at a frontier key, or failed — with its sink (whose partial
    /// contents stay usable either way).
    fn scatter<'b, S, MkS>(
        &self,
        query: &NwcQuery,
        scheme: Scheme,
        budget: &Budget,
        mk_sink: MkS,
    ) -> Vec<ShardOutcome<S>>
    where
        S: GroupSink + Send,
        MkS: Fn() -> S + Sync,
        S: 'b,
    {
        let shards = &self.shards;
        // DEP prunes with the *global* grid only; a scheme asking for a
        // structure the index lacks degrades to not applying it.
        let grid = if scheme.needs_grid() {
            self.grid.as_ref()
        } else {
            None
        };
        // Schedule shards in ascending distance from the query point:
        // the tile containing `q` runs first and establishes a
        // near-final `dist_best`, so farther shards browse under a
        // tight shared bound and SRR/DIP/DEP prune nearly everything.
        // Pure scheduling — the gather merge is canonical, so the
        // answer does not depend on this order. (Under a budget this
        // also spends the allowance nearest-first, where the answer
        // most likely lives.)
        let mindist: Vec<f64> = shards
            .iter()
            .map(|s| s.bounds().mindist2(&query.q))
            .collect();
        let mut order: Vec<usize> = (0..shards.len()).collect();
        order.sort_by(|&a, &b| mindist[a].total_cmp(&mindist[b]).then(a.cmp(&b)));
        scatter_map(self.threads, shards.len(), |j, scratch| {
            let i = order[j];
            let mut sink = mk_sink();
            let result = shard_search(i, shards, grid, query, scheme, &mut sink, scratch, budget);
            ShardOutcome {
                shard: i,
                result,
                sink,
            }
        })
    }

    // ------------------------------------------------------------------
    // Persistence: per-shard page files under one directory manifest.
    // ------------------------------------------------------------------

    /// Saves every shard tree as a read-only page file under `dir`
    /// (created if needed), plus a `MANIFEST` naming them. Reopen with
    /// [`ShardedNwcIndex::open_dir`].
    pub fn save_to_dir(&self, dir: impl AsRef<Path>) -> Result<(), ShardedStoreError> {
        self.save_dir_impl(dir.as_ref(), false)
    }

    /// As [`ShardedNwcIndex::save_to_dir`], writing *writable* (v2)
    /// page files: the reopened index accepts
    /// [`ShardedNwcIndex::insert`] / [`ShardedNwcIndex::remove`], made
    /// durable per shard by [`ShardedNwcIndex::commit_all`].
    pub fn save_to_dir_writable(&self, dir: impl AsRef<Path>) -> Result<(), ShardedStoreError> {
        self.save_dir_impl(dir.as_ref(), true)
    }

    fn save_dir_impl(&self, dir: &Path, writable: bool) -> Result<(), ShardedStoreError> {
        std::fs::create_dir_all(dir)?;
        let mut manifest = format!(
            "nwc-sharded v1\nshards {}\nwritable {}\n",
            self.shards.len(),
            u8::from(writable)
        );
        for (i, shard) in self.shards.iter().enumerate() {
            let name = shard_file_name(i);
            let path = dir.join(&name);
            let saved = if writable {
                shard.save_tree_writable(&path)
            } else {
                shard.save_tree(&path)
            };
            saved.map_err(|error| ShardedStoreError::Save { shard: i, error })?;
            manifest.push_str(&format!("shard {i} {name}\n"));
        }
        // Manifest last, via rename, so a torn save never yields a
        // manifest naming files that were not fully written.
        let tmp = dir.join(format!("{MANIFEST}.tmp"));
        std::fs::write(&tmp, manifest)?;
        std::fs::rename(&tmp, dir.join(MANIFEST))?;
        Ok(())
    }

    /// Opens a directory written by [`ShardedNwcIndex::save_to_dir`]
    /// (or `_writable`). `config` applies per shard, except the pool
    /// budget: [`DiskIndexConfig::pool_capacity`] /
    /// [`DiskIndexConfig::memory_budget_bytes`] describe the **total**
    /// across all shards, split monotonically with
    /// [`nwc_store::split_capacity`] (one shared frame budget, PR 4's
    /// lock-striping split). The global density grid and the id → shard
    /// table are rebuilt from the stored trees, uncharged. A 1-shard
    /// directory opens bit-identically to [`NwcIndex::open_disk`].
    pub fn open_dir(
        dir: impl AsRef<Path>,
        config: DiskIndexConfig,
    ) -> Result<ShardedNwcIndex, ShardedStoreError> {
        let dir = dir.as_ref();
        let files = read_manifest(dir)?;
        let threads = default_threads();
        if files.len() == 1 {
            let single = NwcIndex::open_disk(&files[0], config)
                .map_err(|error| ShardedStoreError::Open { shard: 0, error })?;
            return Ok(Self::from_single(single, threads));
        }
        let shares: Vec<Option<usize>> = match config.effective_pool_capacity() {
            Some(total) => nwc_store::split_capacity(total.max(files.len()), files.len())
                .into_iter()
                .map(Some)
                .collect(),
            None => vec![None; files.len()],
        };
        let mut shards = Vec::with_capacity(files.len());
        for (i, path) in files.iter().enumerate() {
            let shard_cfg = DiskIndexConfig {
                pool_capacity: shares[i],
                memory_budget_bytes: None,
                grid_cell_size: None, // the grid is global
                ..config
            };
            let shard = NwcIndex::open_disk(path, shard_cfg)
                .map_err(|error| ShardedStoreError::Open { shard: i, error })?;
            shards.push(shard);
        }
        // Rebuild the global structures from the shard point tables.
        let mut all_points = Vec::new();
        let mut max_id = 0u32;
        for shard in &shards {
            for (id, &p) in shard.points().iter().enumerate() {
                if shard.is_live(id as u32) {
                    all_points.push(p);
                    max_id = max_id.max(id as u32);
                }
            }
        }
        let mut owner = vec![NO_OWNER; max_id as usize + 1];
        for (s, shard) in shards.iter().enumerate() {
            for (id, slot) in owner.iter_mut().enumerate().take(shard.points().len()) {
                if shard.is_live(id as u32) {
                    *slot = s as u32;
                }
            }
        }
        let bounds = Rect::bounding(all_points.iter().copied()).ok_or_else(|| {
            ShardedStoreError::Manifest("manifest names shards but no shard holds objects".into())
        })?;
        let grid = config
            .grid_cell_size
            .map(|cell| DensityGrid::from_cell_size(grid_bounds(&bounds), cell, &all_points));
        Ok(ShardedNwcIndex {
            next_id: owner.len() as u32,
            shards,
            grid,
            owner,
            bounds,
            threads,
        })
    }

    // ------------------------------------------------------------------
    // Mutation (writable shards).
    // ------------------------------------------------------------------

    /// Adds an object, returning its globally unique id. The point is
    /// routed to the shard whose tile it falls in (nearest shard bounds
    /// on a tie/outside point). Same contract as [`NwcIndex::insert`]:
    /// on writable disk shards the mutation lands in the shard overlay
    /// (call [`ShardedNwcIndex::commit_all`]); read-only shards return
    /// [`IndexUpdateError::ReadOnly`] untouched. Invalidates that
    /// shard's IWP until [`ShardedNwcIndex::rebuild_iwp`].
    pub fn insert(&mut self, point: Point) -> Result<u32, IndexUpdateError> {
        let shard = self.route(point);
        let id = self.next_id;
        self.shards[shard].insert_assigned(id, point)?;
        self.next_id += 1;
        if self.owner.len() <= id as usize {
            self.owner.resize(id as usize + 1, NO_OWNER);
        }
        self.owner[id as usize] = shard as u32;
        self.bounds = self.bounds.expand_to(point);
        if let Some(grid) = &mut self.grid {
            grid.add_point(&point);
        }
        Ok(id)
    }

    /// Removes the object with the given id (routed through the
    /// id → shard table). `Ok(false)` for unknown/already-removed ids.
    pub fn remove(&mut self, id: u32) -> Result<bool, IndexUpdateError> {
        let Some(shard) = self.owner_of(id) else {
            return Ok(false);
        };
        let point = self.shards[shard].points().get(id as usize).copied();
        if !self.shards[shard].remove(id)? {
            return Ok(false);
        }
        self.owner[id as usize] = NO_OWNER;
        if let (Some(grid), Some(p)) = (self.grid.as_mut(), point) {
            grid.remove_point(&p);
        }
        Ok(true)
    }

    /// Durably commits every shard's pending mutations (shadow paging
    /// per shard; see [`NwcIndex::commit`]). Shards commit in order;
    /// the first failure stops the walk — already-committed shards stay
    /// committed (each page file is independently crash-consistent).
    pub fn commit_all(&mut self) -> Result<(), IndexUpdateError> {
        for shard in &mut self.shards {
            shard.commit()?;
        }
        Ok(())
    }

    /// Rebuilds the IWP augmentation on every shard that lost it to a
    /// mutation (cheap no-op on shards that still have it).
    pub fn rebuild_iwp(&mut self) {
        for shard in &mut self.shards {
            if shard.iwp().is_none() {
                shard.rebuild_iwp();
            }
        }
    }

    /// The shard an inserted point routes to: the first shard whose
    /// bounds contain it, else the shard with the nearest bounds —
    /// deterministic in shard order.
    fn route(&self, point: Point) -> usize {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, shard) in self.shards.iter().enumerate() {
            let d = shard.bounds().mindist2(&point);
            if d == 0.0 {
                return i;
            }
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }
}

impl std::fmt::Debug for ShardedNwcIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedNwcIndex")
            .field("shards", &self.shards.len())
            .field("len", &self.len())
            .field("threads", &self.threads)
            .field("global_grid", &self.grid.is_some())
            .finish()
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn shard_file_name(i: usize) -> String {
    format!("shard-{i:03}.pages")
}

/// Parses the directory manifest into shard page-file paths, in shard
/// order.
fn read_manifest(dir: &Path) -> Result<Vec<PathBuf>, ShardedStoreError> {
    let text = std::fs::read_to_string(dir.join(MANIFEST))?;
    let mut lines = text.lines();
    match lines.next() {
        Some("nwc-sharded v1") => {}
        other => {
            return Err(ShardedStoreError::Manifest(format!(
                "unrecognized header {other:?}"
            )))
        }
    }
    let mut declared: Option<usize> = None;
    let mut files: Vec<(usize, PathBuf)> = Vec::new();
    for line in lines {
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("shards") => {
                declared = parts.next().and_then(|s| s.parse().ok());
            }
            Some("shard") => {
                let idx: Option<usize> = parts.next().and_then(|s| s.parse().ok());
                let name = parts.next();
                match (idx, name) {
                    (Some(i), Some(name)) => files.push((i, dir.join(name))),
                    _ => {
                        return Err(ShardedStoreError::Manifest(format!(
                            "bad shard line {line:?}"
                        )))
                    }
                }
            }
            // Unknown keys (e.g. `writable`) are informational.
            _ => {}
        }
    }
    files.sort_by_key(|&(i, _)| i);
    if files.is_empty() {
        return Err(ShardedStoreError::Manifest("no shard entries".into()));
    }
    if let Some(n) = declared {
        if n != files.len() {
            return Err(ShardedStoreError::Manifest(format!(
                "declared {n} shards but listed {}",
                files.len()
            )));
        }
    }
    for (want, (got, _)) in files.iter().enumerate() {
        if *got != want {
            return Err(ShardedStoreError::Manifest(format!(
                "shard ordinals not contiguous (expected {want}, found {got})"
            )));
        }
    }
    Ok(files.into_iter().map(|(_, p)| p).collect())
}

// ----------------------------------------------------------------------
// The per-shard search loop.
// ----------------------------------------------------------------------

/// One shard's best-first search: the owner's tree drives the
/// traversal; every candidate window is answered by the **union** of
/// all shard trees' window queries (owner through its IWP when the
/// scheme asks and the shard has it). Mirrors the single-tree loop of
/// [`crate::algo`], with the sink carrying the cross-shard bound.
///
/// An expired [`Budget`] is not an error: the search stops and reports
/// [`SearchEnd::Exhausted`] with its best-first frontier key, exactly
/// like [`NwcIndex::try_run_search_budget`]. Only disk failures return
/// `Err`.
///
/// I/O attribution relies on the tree I/O counters being *per thread*,
/// not per tree: the `snapshot()`/`since()` window around the union
/// query charges this shard's [`SearchStats`] for the accesses it
/// caused on other shards' trees too, so the per-shard counters sum to
/// the scatter's exact total. The same property makes an I/O allowance
/// a *per-worker* budget under K > 1 — each scatter worker meters the
/// accesses of the shard searches it runs.
#[allow(clippy::too_many_arguments)]
fn shard_search<S: GroupSink>(
    owner: usize,
    shards: &[NwcIndex],
    grid: Option<&DensityGrid>,
    query: &NwcQuery,
    scheme: Scheme,
    sink: &mut S,
    scratch: &mut QueryScratch,
    budget: &Budget,
) -> Result<(SearchStats, SearchEnd), QueryError> {
    let Some(own) = shards.get(owner) else {
        // Unreachable: scatter indexes 0..len.
        return Ok((SearchStats::default(), SearchEnd::Complete));
    };
    let tree = own.tree();
    let io = tree.stats();
    let mut stats = SearchStats::default();
    let hits0 = io.hits_snapshot();
    let errors0 = io.error_snapshot();
    let budget_base = io.snapshot();
    let q = query.q;
    let spec = query.spec;
    let n = query.n;
    // Degrade, never panic: a scheme whose structure is missing simply
    // skips that optimization (the K = 1 delegation path keeps the
    // single-tree panic semantics instead).
    let iwp = if scheme.needs_iwp() { own.iwp() } else { None };

    let mut browser = tree.browse_with(q, &mut scratch.browser);
    if budget.is_armed() {
        browser.set_budget(budget.clone());
    }
    let neighbors = &mut scratch.neighbors;
    let mut end = SearchEnd::Complete;
    'search: while let Some(item) = browser.next() {
        // Best-first key of the item in hand: the frontier position a
        // budget trip hands to the anytime bound arithmetic.
        let key = item.key();
        match item {
            BrowseItem::Node { id, mbr, .. } => {
                if scheme.dip && node_window_lower_bound(&q, &mbr, &spec) > sink.threshold() {
                    stats.nodes_pruned_by_dip += 1;
                    continue;
                }
                if let Some(grid) = grid {
                    if grid.count_upper_bound(&extended_mbr(&q, &mbr, &spec)) < n {
                        stats.nodes_pruned_by_dep += 1;
                        continue;
                    }
                }
                let snap = io.snapshot();
                match browser.try_expand(id) {
                    Ok(()) => {}
                    Err(nwc_rtree::TreeError::Cancelled(kind)) => {
                        end = SearchEnd::Exhausted {
                            kind,
                            frontier: key,
                        };
                        stats.io_traversal += io.since(snap);
                        break 'search;
                    }
                    Err(other) => return Err(other.into()),
                }
                stats.io_traversal += io.since(snap);
            }
            BrowseItem::Object { entry, leaf, .. } => {
                stats.objects_visited += 1;
                let quad = Quadrant::of(&q, &entry.point);
                let sr: Option<Rect> = if scheme.srr {
                    reduced_search_region(&q, &entry.point, &spec, sink.threshold())
                } else {
                    Some(search_region(&entry.point, quad, &spec))
                };
                let Some(sr) = sr else {
                    stats.skipped_by_srr += 1;
                    continue;
                };
                if let Some(grid) = grid {
                    if grid.count_upper_bound(&sr) < n {
                        stats.skipped_by_dep += 1;
                        continue;
                    }
                }
                if let Some(kind) = budget.exceeded(|| io.since(budget_base)) {
                    end = SearchEnd::Exhausted {
                        kind,
                        frontier: key,
                    };
                    break 'search;
                }
                stats.window_queries += 1;
                neighbors.clear();
                let snap = io.snapshot();
                // Owner first (leaf-anchored IWP when available), then
                // the union over every other shard from its root —
                // shard contents are disjoint, so the append-union has
                // no duplicates and equals the single-tree result set.
                // Shards whose live-point bounding box misses `sr` are
                // skipped without touching their tree: every live point
                // lies inside its shard's bounds (insert expands them,
                // remove never shrinks), so a non-intersecting shard
                // cannot contribute a neighbor. STR tiles are near
                // disjoint, so candidate windows — much smaller than a
                // tile — cross into other shards only near tile seams,
                // and the cross-shard root re-descents that would
                // otherwise dominate sharded I/O almost all vanish.
                match iwp {
                    Some(iwp) => iwp.try_window_query_into(tree, leaf, &sr, neighbors)?,
                    None => tree.try_window_query_into(&sr, neighbors)?,
                }
                for (j, other) in shards.iter().enumerate() {
                    if j != owner && other.bounds().intersects(&sr) {
                        other.tree().try_window_query_into(&sr, neighbors)?;
                    }
                }
                stats.io_window_queries += io.since(snap);
                scan_candidates(
                    &q,
                    &spec,
                    n,
                    query.measure,
                    &entry,
                    quad,
                    neighbors,
                    &mut scratch.by_dist,
                    sink,
                    &mut stats,
                );
            }
        }
    }
    browser.recycle(&mut scratch.browser);
    stats.io_total = stats.io_traversal + stats.io_window_queries;
    stats.buffer_hits = io.hits_since(hits0);
    let errors = io.errors_since(errors0);
    stats.retries = errors.retries;
    stats.transient_errors = errors.transient_errors;
    Ok((stats, end))
}

// ----------------------------------------------------------------------
// Scatter outcomes and gather helpers.
// ----------------------------------------------------------------------

/// What one shard's search produced: its end state (or failure) plus
/// its sink, whose partial contents stay usable either way.
struct ShardOutcome<S> {
    shard: usize,
    result: Result<(SearchStats, SearchEnd), QueryError>,
    sink: S,
}

/// The legacy all-or-nothing gather: budget trips are failures (mapped
/// by [`budget_error`]) exactly as the pre-anytime scatter promised,
/// and any failure fails the whole scatter with per-shard detail.
fn gather_strict<S>(
    outcomes: Vec<ShardOutcome<S>>,
) -> Result<Vec<(usize, SearchStats, S)>, ShardScatterError> {
    let mut completed = Vec::with_capacity(outcomes.len());
    let mut failures = Vec::new();
    for o in outcomes {
        match o.result {
            Ok((stats, SearchEnd::Complete)) => completed.push((o.shard, stats, o.sink)),
            Ok((_, SearchEnd::Exhausted { kind, .. })) => {
                failures.push((o.shard, budget_error(kind)))
            }
            Err(e) => failures.push((o.shard, e)),
        }
    }
    if failures.is_empty() {
        Ok(completed)
    } else {
        Err(ShardScatterError {
            failures,
            completed: completed.into_iter().map(|(i, s, _)| (i, s)).collect(),
        })
    }
}

/// Folds one shard's local best into the running canonical merge: min
/// score, ties broken by (sorted ids, window) — independent of shard
/// order.
fn merge_best(best: &mut Option<(f64, Vec<u32>, Vec<Entry>, Rect)>, local: &BestSink) {
    if let Some((group, window)) = &local.best {
        let take = match best {
            None => true,
            Some((score, ids, _, win)) => {
                local.dist_best < *score
                    || (local.dist_best == *score
                        && canonical_less(&local.best_ids, window, ids, win))
            }
        };
        if take {
            *best = Some((
                local.dist_best,
                local.best_ids.clone(),
                group.clone(),
                *window,
            ));
        }
    }
}

/// Merge priority for budget-trip kinds across shards: an external stop
/// outranks a deadline, which outranks an I/O allowance (the same
/// ranking [`ShardScatterError`]'s `QueryError` collapse uses).
fn prefer_kind(current: Option<CancelKind>, new: CancelKind) -> Option<CancelKind> {
    fn rank(k: CancelKind) -> u8 {
        match k {
            CancelKind::Stopped => 2,
            CancelKind::Deadline => 1,
            CancelKind::IoBudget => 0,
        }
    }
    match current {
        Some(cur) if rank(cur) >= rank(new) => Some(cur),
        _ => Some(new),
    }
}

// ----------------------------------------------------------------------
// Cross-shard sinks.
// ----------------------------------------------------------------------

/// NWC sink sharing `dist_best` across shards: offers publish their
/// score into the shared CAS-min *before* local bookkeeping (so sibling
/// shards prune on it at their very next threshold read), while the
/// canonical-tie-break local best supplies this shard's contribution to
/// the gather merge. `shrink` applies the `(1+ε)` certificate to the
/// shared pruning threshold (`1.0` in exact mode — the bitwise
/// identity); offers always publish the *raw* score, so the merged
/// answer is the true best of everything any shard saw.
struct SharedBestSink<'a> {
    bound: &'a AtomicU64,
    shrink: f64,
    local: BestSink,
}

impl GroupSink for SharedBestSink<'_> {
    fn threshold(&self) -> f64 {
        tie_inclusive(f64::from_bits(self.bound.load(Ordering::Acquire)) * self.shrink)
    }

    fn offer(&mut self, group: Vec<Entry>, score: f64, window: Rect, stats: &mut SearchStats) {
        if score >= 0.0 {
            // Non-negative f64 bit patterns order like the values.
            self.bound.fetch_min(score.to_bits(), Ordering::AcqRel);
        }
        self.local.offer(group, score, window, stats);
    }
}

/// kNWC sink sharing one buffered-greedy [`GroupsCore`] across shards.
/// The pruning threshold is cached in a lock-free atomic refreshed on
/// every offer, so the hot threshold reads (every SRR build, every DIP
/// check) never touch the mutex.
struct SharedGroupsSink<'a> {
    core: &'a Mutex<GroupsCore>,
    /// f64 bits of `core.threshold()` (already tie-inclusive).
    cached: &'a AtomicU64,
    idbuf: Vec<ObjectId>,
}

impl GroupSink for SharedGroupsSink<'_> {
    fn threshold(&self) -> f64 {
        f64::from_bits(self.cached.load(Ordering::Acquire))
    }

    fn offer(&mut self, group: Vec<Entry>, score: f64, window: Rect, stats: &mut SearchStats) {
        let mut core = match self.core.lock() {
            Ok(guard) => guard,
            // The buffer has no invariant a poisoned unwind can break
            // (same recovery policy as the buffer pool).
            Err(poisoned) => poisoned.into_inner(),
        };
        core.offer_group(group, score, window, &mut self.idbuf, stats);
        self.cached
            .store(core.threshold().to_bits(), Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WindowSpec;
    use nwc_geom::pt;

    fn world(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                pt(
                    ((i * 37) % 211) as f64 * 3.0,
                    ((i * 53) % 197) as f64 * 3.0,
                )
            })
            .collect()
    }

    #[test]
    fn build_covers_all_points() {
        let pts = world(500);
        for k in [1usize, 2, 4, 7] {
            let idx = ShardedNwcIndex::build(pts.clone(), k);
            assert_eq!(idx.len(), 500, "k={k}");
            assert!(idx.shard_count() <= k);
            let mut seen = vec![false; 500];
            for (s, shard) in idx.shards().iter().enumerate() {
                for id in 0..shard.points().len() as u32 {
                    if shard.is_live(id) {
                        assert!(!seen[id as usize], "object {id} in two shards");
                        seen[id as usize] = true;
                        assert_eq!(idx.owner_of(id), Some(s));
                    }
                }
            }
            assert!(seen.iter().all(|&b| b));
        }
    }

    #[test]
    fn k1_matches_unsharded_bit_for_bit() {
        let pts = world(400);
        let single = NwcIndex::build(pts.clone());
        let sharded = ShardedNwcIndex::build(pts, 1);
        let query = NwcQuery::new(pt(200.0, 200.0), WindowSpec::square(40.0), 6);
        for scheme in Scheme::TABLE3 {
            let (want, want_stats) = single.nwc_full(&query, scheme);
            let (got, got_stats) = sharded.try_nwc_full(&query, scheme).unwrap();
            assert_eq!(want_stats, got_stats, "{scheme}");
            assert_eq!(
                want.as_ref().map(|r| r.ids()),
                got.as_ref().map(|r| r.ids()),
                "{scheme}"
            );
        }
    }

    #[test]
    fn sharded_matches_single_tree_answers() {
        let pts = world(600);
        let single = NwcIndex::build(pts.clone());
        let query = NwcQuery::new(pt(310.0, 280.0), WindowSpec::square(35.0), 5);
        for k in [2usize, 4] {
            for threads in [1usize, 4] {
                let sharded = ShardedNwcIndex::build(pts.clone(), k).with_threads(threads);
                for scheme in Scheme::TABLE3 {
                    let want = single.nwc(&query, scheme);
                    let got = sharded.try_nwc(&query, scheme).unwrap();
                    match (&want, &got) {
                        (None, None) => {}
                        (Some(a), Some(b)) => {
                            assert_eq!(a.ids(), b.ids(), "k={k} t={threads} {scheme}");
                            assert!((a.distance - b.distance).abs() < 1e-12);
                        }
                        _ => panic!("k={k} t={threads} {scheme}: {want:?} vs {got:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn per_shard_stats_sum_to_aggregate() {
        let pts = world(600);
        let sharded = ShardedNwcIndex::build(pts, 4).with_threads(1);
        let query = NwcQuery::new(pt(150.0, 400.0), WindowSpec::square(30.0), 4);
        let answer = sharded.try_nwc_scatter(&query, Scheme::NWC_STAR).unwrap();
        let mut sum = SearchStats::default();
        for s in &answer.per_shard {
            sum.accumulate(s);
        }
        assert_eq!(sum, answer.stats);
        assert!(answer.stats.io_total > 0);
    }

    #[test]
    fn knwc_sharded_matches_single_tree() {
        // Well-separated clusters: no pruning-cascade sensitivity.
        let mut pts = Vec::new();
        for (cx, cy) in [(20.0, 20.0), (120.0, 30.0), (60.0, 140.0), (160.0, 160.0)] {
            for i in 0..6 {
                pts.push(pt(cx + (i % 3) as f64, cy + (i / 3) as f64));
            }
        }
        let single = NwcIndex::build(pts.clone());
        let query = KnwcQuery::new(pt(0.0, 0.0), WindowSpec::square(6.0), 4, 3, 0);
        let want = single.knwc(&query, Scheme::NWC_STAR);
        for k in [2usize, 4] {
            let sharded = ShardedNwcIndex::build(pts.clone(), k).with_threads(1);
            let got = sharded.try_knwc(&query, Scheme::NWC_STAR).unwrap();
            assert_eq!(want.groups.len(), got.groups.len(), "k={k}");
            for (a, b) in want.groups.iter().zip(&got.groups) {
                assert_eq!(a.id_set(), b.id_set(), "k={k}");
                assert!((a.distance - b.distance).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn more_shards_than_objects() {
        let pts = world(3);
        let idx = ShardedNwcIndex::build(pts.clone(), 16);
        assert!(idx.shard_count() <= 3);
        assert_eq!(idx.len(), 3);
        let single = NwcIndex::build(pts);
        let query = NwcQuery::new(pt(0.0, 0.0), WindowSpec::square(700.0), 2);
        let want = single.nwc(&query, Scheme::NWC);
        let got = idx.try_nwc(&query, Scheme::NWC).unwrap();
        assert_eq!(want.map(|r| r.ids()), got.map(|r| r.ids()));
    }

    #[test]
    fn insert_routes_and_queries_see_it() {
        let pts = world(200);
        let mut idx = ShardedNwcIndex::build(pts, 4);
        let id = idx.insert(pt(90.0, 90.0)).unwrap();
        assert!(idx.owner_of(id).is_some());
        assert_eq!(idx.len(), 201);
        idx.rebuild_iwp();
        let query = NwcQuery::new(pt(90.0, 90.0), WindowSpec::square(4.0), 1);
        let got = idx.try_nwc(&query, Scheme::NWC_STAR).unwrap().unwrap();
        assert_eq!(got.ids(), vec![id]);
        assert!(idx.remove(id).unwrap());
        assert!(!idx.remove(id).unwrap());
        assert_eq!(idx.owner_of(id), None);
        assert_eq!(idx.len(), 200);
    }

    #[test]
    fn manifest_round_trip_and_errors() {
        let dir = std::env::temp_dir().join(format!(
            "nwc-shard-manifest-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let idx = ShardedNwcIndex::build(world(300), 3);
        idx.save_to_dir(&dir).unwrap();
        let files = read_manifest(&dir).unwrap();
        assert_eq!(files.len(), idx.shard_count());
        // Corrupt: header
        std::fs::write(dir.join(MANIFEST), "bogus\n").unwrap();
        assert!(matches!(
            read_manifest(&dir),
            Err(ShardedStoreError::Manifest(_))
        ));
        // Corrupt: count mismatch
        std::fs::write(
            dir.join(MANIFEST),
            "nwc-sharded v1\nshards 5\nshard 0 shard-000.pages\n",
        )
        .unwrap();
        assert!(matches!(
            read_manifest(&dir),
            Err(ShardedStoreError::Manifest(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scatter_error_prefers_cancellation() {
        let e = ShardScatterError {
            failures: vec![
                (
                    0,
                    QueryError::Io(nwc_rtree::DiskReadError {
                        page: 7,
                        detail: "x".into(),
                    }),
                ),
                (1, QueryError::Deadline),
            ],
            completed: vec![],
        };
        assert_eq!(QueryError::from(e), QueryError::Deadline);
    }
}
