//! Streaming ingest with sliding-window retention.
//!
//! The NWC paper evaluates static snapshots, but the motivating data
//! sources (check-ins, listings, sensor sightings) arrive as streams.
//! [`StreamingIngestor`] wraps an [`NwcIndex`] with the standard
//! stream-index discipline:
//!
//! - **Append**: [`StreamingIngestor::push`] inserts the newest point.
//! - **Sliding-window eviction**: when the index holds `capacity` live
//!   objects, the *oldest* live object (FIFO by insertion epoch) is
//!   removed first, so the index always answers queries over the most
//!   recent `capacity` observations.
//! - **Commit cadence**: on a writable disk-backed index, mutations
//!   accumulate in the copy-on-write overlay; every `commit_every`
//!   pushes the ingestor calls [`NwcIndex::commit`], trading durability
//!   lag against commit amortization. In-memory indexes ignore the
//!   cadence (their mutations are always live).
//!
//! The ingestor is backend-agnostic: the same code path drives an
//! in-memory index and a writable disk index, which is what
//! `experiments ingest` exploits to measure ingest throughput against
//! pool capacity and commit cadence.
//!
//! Queries remain available between pushes through
//! [`StreamingIngestor::index`] — the wrapped index is never torn down,
//! and on a disk backend uncommitted mutations are visible to queries
//! immediately (overlay-first reads).

use crate::index::{IndexUpdateError, NwcIndex};
use nwc_geom::Point;
use std::collections::VecDeque;

/// Retention and durability policy for a [`StreamingIngestor`].
#[derive(Clone, Copy, Debug)]
pub struct IngestConfig {
    /// Maximum live objects retained; pushing beyond it evicts the
    /// oldest live object first. Must be ≥ 1.
    pub capacity: usize,
    /// Commit after this many pushes (disk-backed indexes only).
    /// 0 disables automatic commits — the caller owns durability via
    /// [`StreamingIngestor::commit`].
    pub commit_every: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            capacity: usize::MAX,
            commit_every: 0,
        }
    }
}

/// A sliding-window streaming wrapper over an [`NwcIndex`]; see the
/// module docs.
pub struct StreamingIngestor {
    index: NwcIndex,
    config: IngestConfig,
    /// Live object ids, oldest first. Ids of objects present at wrap
    /// time are enqueued in id order (build order = arrival order for
    /// every dataset loader in this repo).
    window: VecDeque<u32>,
    pushes_since_commit: usize,
    evicted: u64,
    commits: u64,
}

impl StreamingIngestor {
    /// Wraps `index`, adopting its current live objects as the initial
    /// window content (oldest = smallest id).
    ///
    /// # Panics
    ///
    /// Panics when `config.capacity` is 0 — a windowed index must be
    /// allowed to hold at least one object.
    pub fn new(index: NwcIndex, config: IngestConfig) -> Self {
        assert!(config.capacity >= 1, "ingest window capacity must be >= 1");
        let window: VecDeque<u32> = (0..index.points().len() as u32)
            .filter(|&id| index.is_live(id))
            .collect();
        StreamingIngestor {
            index,
            config,
            window,
            pushes_since_commit: 0,
            evicted: 0,
            commits: 0,
        }
    }

    /// Inserts `point`, evicting the oldest live object first when the
    /// window is full. Returns the new object's id.
    ///
    /// On a disk-backed index an I/O error mid-update can leave the
    /// uncommitted overlay partially applied; discard the ingestor and
    /// reopen from the last committed state.
    pub fn push(&mut self, point: Point) -> Result<u32, IndexUpdateError> {
        while self.window.len() >= self.config.capacity {
            // Evict before inserting so capacity also bounds the
            // index's transient size.
            if let Some(oldest) = self.window.pop_front() {
                self.index.remove(oldest)?;
                self.evicted += 1;
            }
        }
        let id = self.index.insert(point)?;
        self.window.push_back(id);
        self.pushes_since_commit += 1;
        if self.config.commit_every > 0 && self.pushes_since_commit >= self.config.commit_every {
            self.commit()?;
        }
        Ok(id)
    }

    /// Commits pending mutations of a disk-backed index now (a no-op on
    /// in-memory indexes) and resets the commit cadence counter.
    pub fn commit(&mut self) -> Result<(), IndexUpdateError> {
        self.index.commit()?;
        self.pushes_since_commit = 0;
        self.commits += 1;
        Ok(())
    }

    /// The wrapped index, for running queries between pushes.
    pub fn index(&self) -> &NwcIndex {
        &self.index
    }

    /// Number of live objects currently retained.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Objects evicted by the sliding window so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Commits performed (explicit and cadence-driven).
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Consumes the ingestor, returning the wrapped index (pending
    /// mutations are *not* committed — call
    /// [`StreamingIngestor::commit`] first if durability matters).
    pub fn into_index(self) -> NwcIndex {
        self.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwc_geom::pt;

    fn base_points(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| pt(((i * 37) % 500) as f64, ((i * 91) % 500) as f64))
            .collect()
    }

    #[test]
    fn push_beyond_capacity_evicts_fifo() {
        let idx = NwcIndex::build(base_points(10));
        let mut ing = StreamingIngestor::new(
            idx,
            IngestConfig {
                capacity: 10,
                commit_every: 0,
            },
        );
        // Two pushes must evict ids 0 and 1, the oldest.
        ing.push(pt(600.0, 600.0)).unwrap();
        ing.push(pt(601.0, 601.0)).unwrap();
        assert_eq!(ing.window_len(), 10);
        assert_eq!(ing.evicted(), 2);
        let idx = ing.index();
        assert!(!idx.is_live(0));
        assert!(!idx.is_live(1));
        assert!(idx.is_live(2));
        assert!(idx.is_live(10) && idx.is_live(11));
        assert_eq!(idx.len(), 10);
    }

    #[test]
    fn unbounded_config_never_evicts() {
        let idx = NwcIndex::build(base_points(5));
        let mut ing = StreamingIngestor::new(idx, IngestConfig::default());
        for i in 0..50 {
            ing.push(pt(700.0 + i as f64, 700.0)).unwrap();
        }
        assert_eq!(ing.evicted(), 0);
        assert_eq!(ing.window_len(), 55);
        assert_eq!(ing.index().len(), 55);
    }

    #[test]
    fn queries_stay_correct_under_churn() {
        use crate::{NwcQuery, Scheme};
        use nwc_geom::window::WindowSpec;

        let idx = NwcIndex::build(base_points(200));
        let mut ing = StreamingIngestor::new(
            idx,
            IngestConfig {
                capacity: 200,
                commit_every: 0,
            },
        );
        // Stream a tight cluster near (800, 800); the window slides over
        // the old uniform points.
        for i in 0..150u32 {
            ing.push(pt(800.0 + (i % 5) as f64, 800.0 + (i / 5 % 5) as f64))
                .unwrap();
        }
        let q = NwcQuery::new(pt(790.0, 790.0), WindowSpec::square(10.0), 8);
        let hit = ing.index().nwc(&q, Scheme::NWC).expect("cluster exists");
        assert_eq!(hit.objects.len(), 8);
        assert!(hit.objects.iter().all(|e| e.point.x >= 799.0));
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let idx = NwcIndex::build(base_points(3));
        let _ = StreamingIngestor::new(
            idx,
            IngestConfig {
                capacity: 0,
                commit_every: 0,
            },
        );
    }
}
