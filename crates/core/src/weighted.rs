//! Weighted NWC queries — "nearest window with total weight ≥ W".
//!
//! A generalization the paper's machinery supports directly: objects
//! carry non-negative weights (seats across restaurants, stock across
//! shops) and a window is *qualified* when its total weight reaches a
//! threshold `W`. Plain NWC is the all-weights-one special case
//! (`W = n`).
//!
//! Everything from §3 carries over:
//!
//! - Lemma 1 and the quadrant rules are purely geometric — unchanged;
//! - SRR and DIP depend only on `dist_best` geometry — unchanged;
//! - DEP prunes with a *weight-sum* grid ([`nwc_grid::WeightGrid`]);
//! - IWP is unchanged.
//!
//! The group returned from a qualified window takes objects in
//! ascending distance until the weight threshold is met (the weighted
//! analogue of "the n objects of the shortest distance"). The default
//! measure is [`DistanceMeasure::Max`]; `Min` is also exactly optimal
//! under this greedy rule, while `Avg`/`NearestWindow` inherit the
//! greedy selection without a per-window optimality claim (same status
//! as in the unweighted paper semantics).

use crate::measure::DistanceMeasure;
use crate::result::{NwcResult, SearchStats};
use crate::scheme::Scheme;
use nwc_geom::window::{
    extended_mbr, node_window_lower_bound, reduced_search_region, search_region, WindowSpec,
};
use nwc_geom::{Point, Quadrant, Rect};
use nwc_grid::WeightGrid;
use nwc_rtree::{BrowseItem, Entry, IwpIndex, RStarTree, TreeParams};

/// A weighted NWC query: `NWC_w(q, l, w, W)`.
#[derive(Clone, Copy, Debug)]
pub struct WeightedQuery {
    /// Query location.
    pub q: Point,
    /// Window dimensions.
    pub spec: WindowSpec,
    /// Minimum total weight a window must hold to qualify.
    pub min_weight: f64,
    /// Distance measure over the selected group.
    pub measure: DistanceMeasure,
}

impl WeightedQuery {
    /// Creates a query with the default (`Max`) measure.
    ///
    /// # Panics
    ///
    /// Panics when `min_weight` is not strictly positive and finite.
    pub fn new(q: Point, spec: WindowSpec, min_weight: f64) -> Self {
        assert!(
            min_weight > 0.0 && min_weight.is_finite(),
            "min_weight must be positive and finite"
        );
        WeightedQuery {
            q,
            spec,
            min_weight,
            measure: DistanceMeasure::Max,
        }
    }
}

/// An index over weighted points answering [`WeightedQuery`]s.
pub struct WeightedNwcIndex {
    points: Vec<Point>,
    weights: Vec<f64>,
    tree: RStarTree,
    wgrid: Option<WeightGrid>,
    iwp: Option<IwpIndex>,
}

impl WeightedNwcIndex {
    /// Builds the index (STR bulk load, weight grid at the paper's cell
    /// size 25, IWP augmentation).
    ///
    /// # Panics
    ///
    /// Panics on empty input, length mismatch, or invalid weights.
    pub fn build(points: Vec<Point>, weights: Vec<f64>) -> Self {
        assert!(!points.is_empty(), "cannot index an empty dataset");
        assert_eq!(points.len(), weights.len(), "points/weights mismatch");
        let bounds = Rect::bounding(points.iter().copied()).expect("non-empty");
        let grid_bounds = {
            let space = Rect::new(Point::new(0.0, 0.0), Point::new(10_000.0, 10_000.0));
            if space.contains_rect(&bounds) {
                space
            } else {
                bounds.inflate(bounds.width().max(1.0) * 1e-9, bounds.height().max(1.0) * 1e-9)
            }
        };
        let tree = RStarTree::bulk_load_with_params(&points, TreeParams::default());
        let wgrid = Some(WeightGrid::from_cell_size(grid_bounds, 25.0, &points, &weights));
        let iwp = Some(IwpIndex::build(&tree));
        WeightedNwcIndex {
            points,
            weights,
            tree,
            wgrid,
            iwp,
        }
    }

    /// The weight of one object.
    pub fn weight(&self, id: u32) -> f64 {
        self.weights[id as usize]
    }

    /// The indexed points.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Answers the weighted query under a scheme. Returns the group and
    /// its total weight, or `None` when no window reaches `min_weight`.
    pub fn query(&self, query: &WeightedQuery, scheme: Scheme) -> Option<(NwcResult, f64)> {
        let tree = &self.tree;
        let io = tree.stats();
        let mut stats = SearchStats::default();
        let hits0 = io.hits_snapshot();
        let q = query.q;
        let spec = query.spec;
        let min_w = query.min_weight;

        let grid = scheme.needs_grid().then(|| {
            self.wgrid
                .as_ref()
                .expect("weighted DEP needs the weight grid")
        });
        let iwp = scheme.needs_iwp().then(|| {
            self.iwp.as_ref().expect("weighted IWP needs the pointer augmentation")
        });

        let mut dist_best = f64::INFINITY;
        let mut best: Option<(Vec<Entry>, Rect, f64)> = None;

        let mut browser = tree.browse(q);
        let mut neighbors: Vec<Entry> = Vec::new();
        while let Some(item) = browser.next() {
            match item {
                BrowseItem::Node { id, mbr, .. } => {
                    if scheme.dip && node_window_lower_bound(&q, &mbr, &spec) > dist_best {
                        stats.nodes_pruned_by_dip += 1;
                        continue;
                    }
                    if let Some(grid) = grid {
                        if grid.weight_upper_bound(&extended_mbr(&q, &mbr, &spec)) < min_w {
                            stats.nodes_pruned_by_dep += 1;
                            continue;
                        }
                    }
                    let snap = io.snapshot();
                    browser.expand(id);
                    stats.io_traversal += io.since(snap);
                }
                BrowseItem::Object { entry, leaf, .. } => {
                    stats.objects_visited += 1;
                    let quad = Quadrant::of(&q, &entry.point);
                    let sr = if scheme.srr {
                        reduced_search_region(&q, &entry.point, &spec, dist_best)
                    } else {
                        Some(search_region(&entry.point, quad, &spec))
                    };
                    let Some(sr) = sr else {
                        stats.skipped_by_srr += 1;
                        continue;
                    };
                    if let Some(grid) = grid {
                        if grid.weight_upper_bound(&sr) < min_w {
                            stats.skipped_by_dep += 1;
                            continue;
                        }
                    }
                    stats.window_queries += 1;
                    neighbors.clear();
                    let snap = io.snapshot();
                    match iwp {
                        Some(iwp) => iwp.window_query_into(tree, leaf, &sr, &mut neighbors),
                        None => tree.window_query_into(&sr, &mut neighbors),
                    }
                    stats.io_window_queries += io.since(snap);
                    self.scan_weighted(
                        &q,
                        &spec,
                        min_w,
                        query.measure,
                        &entry,
                        quad,
                        &mut neighbors,
                        &mut dist_best,
                        &mut best,
                        &mut stats,
                    );
                }
            }
        }
        // Attributed accounting (see algo.rs): sum of phases, safe under
        // concurrent queries on the shared counter.
        stats.io_total = stats.io_traversal + stats.io_window_queries;
        stats.buffer_hits = io.hits_since(hits0);
        best.map(|(objects, window, total_weight)| {
            (
                NwcResult {
                    objects,
                    distance: dist_best,
                    window,
                    stats,
                },
                total_weight,
            )
        })
    }

    /// Weighted candidate-window scan: prefix weight sums over the
    /// y-sorted search-region contents.
    #[allow(clippy::too_many_arguments)]
    fn scan_weighted(
        &self,
        q: &Point,
        spec: &WindowSpec,
        min_w: f64,
        measure: DistanceMeasure,
        p: &Entry,
        quad: Quadrant,
        neighbors: &mut [Entry],
        dist_best: &mut f64,
        best: &mut Option<(Vec<Entry>, Rect, f64)>,
        stats: &mut SearchStats,
    ) {
        neighbors.sort_by(|a, b| a.point.y.total_cmp(&b.point.y));
        let prefix: Vec<f64> = std::iter::once(0.0)
            .chain(neighbors.iter().scan(0.0, |acc, e| {
                *acc += self.weights[e.id as usize];
                Some(*acc)
            }))
            .collect();

        let mut consider = |partner_y: f64| {
            stats.candidate_windows += 1;
            let win = nwc_geom::window::candidate_window(&p.point, partner_y, quad, spec);
            let lo = neighbors.partition_point(|e| e.point.y < win.min.y);
            let hi = neighbors.partition_point(|e| e.point.y <= win.max.y);
            if prefix[hi] - prefix[lo] < min_w {
                return;
            }
            stats.qualified_windows += 1;
            if win.mindist(q) >= *dist_best {
                return;
            }
            // Greedy: closest objects until the weight threshold is met.
            let mut scored: Vec<(f64, Entry)> = neighbors[lo..hi]
                .iter()
                .map(|&e| (e.point.dist2(q), e))
                .collect();
            scored.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.id.cmp(&b.1.id)));
            let mut acc = 0.0;
            let mut group: Vec<Entry> = Vec::new();
            for (_, e) in scored {
                acc += self.weights[e.id as usize];
                group.push(e);
                if acc >= min_w {
                    break;
                }
            }
            debug_assert!(acc >= min_w);
            let score = measure.score(q, &group, spec);
            if score < *dist_best {
                *dist_best = score;
                *best = Some((group, win, acc));
                stats.best_updates += 1;
            }
        };

        if quad.partner_on_top_edge() {
            let start = neighbors.partition_point(|e| e.point.y < p.point.y);
            let mut prev = f64::NAN;
            for e in &neighbors[start..] {
                if e.point.y != prev {
                    prev = e.point.y;
                    consider(e.point.y);
                }
            }
        } else {
            let end = neighbors.partition_point(|e| e.point.y <= p.point.y);
            let mut prev = f64::NAN;
            for e in neighbors[..end].iter().rev() {
                if e.point.y != prev {
                    prev = e.point.y;
                    consider(e.point.y);
                }
            }
        }
    }
}

/// Brute-force weighted oracle over the same candidate-window family.
pub fn weighted_brute_force(
    points: &[Point],
    weights: &[f64],
    query: &WeightedQuery,
) -> Option<(Vec<u32>, f64)> {
    let entries: Vec<Entry> = points
        .iter()
        .enumerate()
        .map(|(i, &p)| Entry::new(i as u32, p))
        .collect();
    let mut best: Option<(Vec<u32>, f64)> = None;
    for p in &entries {
        let quad = Quadrant::of(&query.q, &p.point);
        for partner in &entries {
            let dy = partner.point.y - p.point.y;
            let admissible = if quad.partner_on_top_edge() {
                (0.0..=query.spec.w).contains(&dy)
            } else {
                (-query.spec.w..=0.0).contains(&dy)
            };
            if !admissible {
                continue;
            }
            let win =
                nwc_geom::window::candidate_window(&p.point, partner.point.y, quad, &query.spec);
            if !win.contains_point(&partner.point) {
                continue;
            }
            let mut inside: Vec<(f64, Entry)> = entries
                .iter()
                .filter(|e| win.contains_point(&e.point))
                .map(|&e| (e.point.dist2(&query.q), e))
                .collect();
            let total: f64 = inside.iter().map(|(_, e)| weights[e.id as usize]).sum();
            if total < query.min_weight {
                continue;
            }
            inside.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.id.cmp(&b.1.id)));
            let mut acc = 0.0;
            let mut group: Vec<Entry> = Vec::new();
            for (_, e) in inside {
                acc += weights[e.id as usize];
                group.push(e);
                if acc >= query.min_weight {
                    break;
                }
            }
            let score = query.measure.score(&query.q, &group, &query.spec);
            if best.as_ref().is_none_or(|&(_, s)| score < s) {
                best = Some((group.iter().map(|e| e.id).collect(), score));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwc_geom::pt;

    #[test]
    fn unit_weights_match_plain_nwc() {
        let pts: Vec<Point> = (0..80)
            .map(|i| pt(((i * 13) % 60) as f64, ((i * 29) % 55) as f64))
            .collect();
        let widx = WeightedNwcIndex::build(pts.clone(), vec![1.0; pts.len()]);
        let idx = crate::NwcIndex::build(pts.clone());
        for n in [2usize, 4, 8] {
            let wq = WeightedQuery::new(pt(30.0, 30.0), WindowSpec::square(12.0), n as f64);
            let nq = crate::NwcQuery::new(pt(30.0, 30.0), WindowSpec::square(12.0), n);
            let a = widx.query(&wq, Scheme::NWC_STAR).map(|(r, _)| r.distance);
            let b = idx.nwc(&nq, Scheme::NWC_STAR).map(|r| r.distance);
            match (a, b) {
                (None, None) => {}
                (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9, "n={n}: {x} vs {y}"),
                other => panic!("n={n}: {other:?}"),
            }
        }
    }

    #[test]
    fn prefers_one_heavy_object_over_far_cluster() {
        // A single weight-10 restaurant nearby beats five weight-1 ones
        // far away when W = 8.
        let pts = vec![
            pt(10.0, 10.0), // heavy
            pt(80.0, 80.0),
            pt(81.0, 81.0),
            pt(82.0, 80.5),
            pt(80.5, 82.0),
            pt(81.5, 79.5),
        ];
        let ws = vec![10.0, 2.0, 2.0, 2.0, 2.0, 2.0];
        let widx = WeightedNwcIndex::build(pts, ws);
        let q = WeightedQuery::new(pt(0.0, 0.0), WindowSpec::square(6.0), 8.0);
        let (r, total) = widx.query(&q, Scheme::NWC_STAR).unwrap();
        assert_eq!(r.ids(), vec![0]);
        assert_eq!(total, 10.0);
    }

    #[test]
    fn schemes_agree_weighted() {
        let pts: Vec<Point> = (0..120)
            .map(|i| pt(((i * 17) % 70) as f64, ((i * 41) % 65) as f64))
            .collect();
        let ws: Vec<f64> = (0..120).map(|i| 0.5 + (i % 4) as f64).collect();
        let widx = WeightedNwcIndex::build(pts, ws);
        let q = WeightedQuery::new(pt(35.0, 30.0), WindowSpec::square(10.0), 12.0);
        let dists: Vec<Option<f64>> = Scheme::TABLE3
            .iter()
            .map(|&s| widx.query(&q, s).map(|(r, _)| r.distance))
            .collect();
        for d in &dists[1..] {
            match (dists[0], *d) {
                (None, None) => {}
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9, "{dists:?}"),
                _ => panic!("{dists:?}"),
            }
        }
    }

    #[test]
    fn matches_brute_force() {
        let pts: Vec<Point> = (0..50)
            .map(|i| pt(((i * 23) % 45) as f64, ((i * 31) % 40) as f64))
            .collect();
        let ws: Vec<f64> = (0..50).map(|i| 1.0 + (i % 3) as f64).collect();
        let widx = WeightedNwcIndex::build(pts.clone(), ws.clone());
        for min_w in [3.0, 8.0, 20.0] {
            let q = WeightedQuery::new(pt(20.0, 18.0), WindowSpec::square(9.0), min_w);
            let got = widx.query(&q, Scheme::NWC_STAR).map(|(r, _)| r.distance);
            let want = weighted_brute_force(&pts, &ws, &q).map(|(_, s)| s);
            match (got, want) {
                (None, None) => {}
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9, "W={min_w}: {a} vs {b}"),
                other => panic!("W={min_w}: {other:?}"),
            }
        }
    }

    #[test]
    fn unreachable_weight_returns_none() {
        let pts = vec![pt(1.0, 1.0), pt(2.0, 2.0)];
        let widx = WeightedNwcIndex::build(pts, vec![1.0, 1.0]);
        let q = WeightedQuery::new(pt(0.0, 0.0), WindowSpec::square(5.0), 100.0);
        assert!(widx.query(&q, Scheme::NWC_STAR).is_none());
    }
}
