//! A self-contained, offline stand-in for the `proptest` crate.
//!
//! The crates-io registry is unreachable in this repository's build
//! environment (see README § Offline builds), so the workspace vendors
//! the *subset* of proptest's API its test suites use: strategies built
//! from ranges, tuples, `prop_map`/`prop_flat_map`, `Just`,
//! `collection::vec`, `any::<bool>()`, `any::<sample::Index>()`, the
//! `proptest!` macro with `#![proptest_config(...)]`, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! - **No shrinking.** A failing case panics with its case number and
//!   master seed; cases are fully deterministic (seeded by test name,
//!   overridable via `PROPTEST_SEED`), so a failure reproduces exactly.
//! - **Fixed case counts.** `ProptestConfig::with_cases(n)` runs `n`
//!   accepted cases; `prop_assume!` rejections retry (bounded) instead
//!   of shrinking the search space. `PROPTEST_CASES` caps the count for
//!   quick smoke runs.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Deterministic RNG behind all strategies (SplitMix64 — the same
/// generator `nwc-datagen` uses, duplicated here so the shim stays
/// dependency-free).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is irrelevant at test-strategy ranges (« 2^64).
        self.next_u64() % n
    }
}

/// A value generator. The shim's `Strategy` produces values directly —
/// there is no shrink tree.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns
    /// for it (dependent strategies).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // The closed upper endpoint is hit with probability ~2^-53;
        // boundary coverage comes from the range interior anyway.
        self.start() + (self.end() - self.start()) * rng.next_f64()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical random generator, usable via [`any`].
pub trait Arbitrary {
    /// Draws one value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for any [`Arbitrary`] type.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The canonical strategy for `T` (shim equivalent of
/// `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size bound for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Generates `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop` namespace re-exported by the prelude (`prop::sample::…`).
pub mod prop {
    /// Sampling helpers (`prop::sample`).
    pub mod sample {
        use super::super::{Arbitrary, TestRng};

        /// An index into a collection whose length is unknown at
        /// generation time: stores a fraction and resolves against the
        /// actual length via [`Index::index`].
        #[derive(Clone, Copy, Debug)]
        pub struct Index {
            fraction: f64,
        }

        impl Index {
            /// Resolves against a collection of `len` elements.
            ///
            /// # Panics
            ///
            /// Panics when `len` is zero, like the real proptest.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "cannot index an empty collection");
                ((self.fraction * len as f64) as usize).min(len - 1)
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Self {
                Index {
                    fraction: rng.next_f64(),
                }
            }
        }
    }
}

/// Per-test configuration (`with_cases` is the only knob the workspace
/// uses).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Support types used by the expansion of [`proptest!`].
pub mod test_runner {
    use super::{ProptestConfig, TestRng};

    /// Outcome of one generated case.
    pub enum CaseResult {
        /// The case ran to completion.
        Ok,
        /// A `prop_assume!` rejected the inputs; retry with new ones.
        Reject,
    }

    /// Drives the deterministic case loop for one `proptest!` test.
    pub struct TestRunner {
        cases: u32,
        seed: u64,
        master: TestRng,
    }

    impl TestRunner {
        /// Seeds from the test name (stable across runs and platforms),
        /// `PROPTEST_SEED` overriding, `PROPTEST_CASES` capping.
        pub fn new(config: ProptestConfig, test_name: &str) -> Self {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    // FNV-1a over the test name.
                    test_name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
                    })
                });
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .map_or(config.cases, |cap: u32| config.cases.min(cap));
            TestRunner {
                cases,
                seed,
                master: TestRng::new(seed),
            }
        }

        /// Number of accepted cases to aim for.
        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// The master seed (for failure reports).
        pub fn seed(&self) -> u64 {
            self.seed
        }

        /// An independent RNG for the next case.
        pub fn next_rng(&mut self) -> TestRng {
            TestRng::new(self.master.next_u64())
        }
    }
}

/// Defines `#[test]` functions over generated inputs. Supports the
/// real-proptest form used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn my_property(x in 0u32..100, (a, b) in pair_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr;) => {};
    ($cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner =
                $crate::test_runner::TestRunner::new(config, stringify!($name));
            let mut accepted = 0u32;
            let mut attempts = 0u32;
            let max_attempts = runner.cases().saturating_mul(20).max(20);
            while accepted < runner.cases() && attempts < max_attempts {
                attempts += 1;
                let mut rng = runner.next_rng();
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                let case = std::panic::AssertUnwindSafe(
                    || -> $crate::test_runner::CaseResult {
                        $body
                        #[allow(unreachable_code)]
                        $crate::test_runner::CaseResult::Ok
                    },
                );
                match std::panic::catch_unwind(case) {
                    Ok($crate::test_runner::CaseResult::Ok) => accepted += 1,
                    Ok($crate::test_runner::CaseResult::Reject) => {}
                    Err(panic) => {
                        eprintln!(
                            "proptest shim: {} failed on attempt {} (master seed {})",
                            stringify!($name),
                            attempts,
                            runner.seed(),
                        );
                        std::panic::resume_unwind(panic);
                    }
                }
            }
            assert!(
                accepted > 0,
                "proptest shim: every generated input was rejected by prop_assume!"
            );
        }
        $crate::__proptest_tests! { $cfg; $($rest)* }
    };
}

/// Asserts inside a `proptest!` body (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Rejects the current generated case, drawing a fresh one.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return $crate::test_runner::CaseResult::Reject;
        }
    };
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::prop;
    pub use crate::{any, Any, Arbitrary, Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (2.0f64..4.0).generate(&mut rng);
            assert!((2.0..4.0).contains(&f));
            let i = (5usize..=5).generate(&mut rng);
            assert_eq!(i, 5);
        }
    }

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let v = collection::vec(0u32..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let s = (0u32..1000, 0.0f64..1.0);
        let a: Vec<_> = {
            let mut rng = TestRng::new(99);
            (0..50).map(|_| s.generate(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = TestRng::new(99);
            (0..50).map(|_| s.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn sample_index_resolves() {
        let mut rng = TestRng::new(3);
        for len in [1usize, 2, 17, 1000] {
            for _ in 0..100 {
                let idx = any::<prop::sample::Index>().generate(&mut rng);
                assert!(idx.index(len) < len);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_and_rejects(x in 0u32..100, (a, b) in (0u32..10, 0u32..10)) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x < 100);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
