//! Deterministic fault injection for page stores.
//!
//! [`FaultStore`] wraps any [`PageStore`] and injects storage failures
//! on a **seeded, scriptable** schedule, so the chaos tests and the
//! `experiments faults` sweep exercise the retry/quarantine machinery
//! reproducibly. The taxonomy mirrors how real disks fail:
//!
//! - **Transient errors** — the read fails, the retry succeeds (a busy
//!   device, an interrupted syscall). Injected at a seeded rate, in
//!   bounded bursts, so any retry budget larger than the burst is
//!   guaranteed to recover.
//! - **Torn / short reads** — the buffer is only partially filled and
//!   the read reports `UnexpectedEof`. One-shot: the retry completes.
//! - **Permanent faults** — a scripted page fails every read (a dead
//!   sector). No retry budget recovers; the caller must surface a typed
//!   error and quarantine the page.
//! - **Bit-rot** — the delegate read *succeeds* but the returned bytes
//!   are flipped after any backend checksum had its chance, modeling
//!   corruption between media and caller (bus, RAM). The page decoder
//!   above must reject the bytes; retrying re-reads the same rot.
//! - **Latency** — an optional fixed delay per physical read, for
//!   measuring retry overhead against slow media.
//!
//! Every injected fault is counted exactly once in [`FaultStats`];
//! tests assert these counters against the reader-side `retries` /
//! `transient_errors` counters to prove no fault is double-counted or
//! silently swallowed.

use crate::error::StoreError;
use crate::store::{PageStore, StoreMeta};
use crate::PAGE_SIZE;
use std::collections::{HashMap, HashSet};
use std::io;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// The fault schedule a [`FaultStore`] injects. Rates are evaluated
/// against a seeded xorshift generator, so a given plan over a given
/// read sequence produces the same faults on every run.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// Seed for the internal generator; equal seeds replay equal fault
    /// schedules over equal read sequences.
    pub seed: u64,
    /// Probability in `[0, 1]` that a read draws a transient-error
    /// burst (the read and the next `transient_burst - 1` attempts on
    /// that page fail, then it recovers).
    pub transient_rate: f64,
    /// Consecutive failures per transient burst (≥ 1). A retry budget
    /// of `transient_burst + 1` attempts always recovers.
    pub transient_burst: u32,
    /// Probability in `[0, 1]` that a read is torn: the buffer is left
    /// partially filled and the read errors. One-shot — independent of
    /// `transient_rate`, recovered by a single retry.
    pub torn_rate: f64,
    /// Fixed extra latency per physical read (models slow media when
    /// measuring retry overhead). `None` = no delay.
    pub latency: Option<Duration>,
}

impl Default for FaultPlan {
    /// No faults, no latency — a transparent wrapper until scripted.
    fn default() -> Self {
        FaultPlan {
            seed: 0x5EED_CAFE,
            transient_rate: 0.0,
            transient_burst: 1,
            torn_rate: 0.0,
            latency: None,
        }
    }
}

impl FaultPlan {
    /// A transient-only plan: rate `rate`, single-failure bursts, seeded
    /// with `seed`. Any retry budget of ≥ 2 attempts always recovers.
    pub fn transient(rate: f64, seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_rate: rate,
            ..FaultPlan::default()
        }
    }
}

/// Exact injected-fault counts, one per taxonomy entry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transient read errors injected (each failed attempt counts one).
    pub transient: u64,
    /// Torn/short reads injected.
    pub torn: u64,
    /// Reads failed because the page is scripted permanently bad.
    pub permanent: u64,
    /// Successful reads whose returned bytes were rotted.
    pub bitrot: u64,
    /// Reads delayed by the plan's latency.
    pub delayed: u64,
}

impl FaultStats {
    /// Total injected *errors* (faults that surfaced as `Err`; bit-rot
    /// returns `Ok` with bad bytes and is excluded).
    pub fn errors(&self) -> u64 {
        self.transient + self.torn + self.permanent
    }
}

/// Mutable injection state, behind one mutex: the generator plus the
/// scripted page sets.
struct FaultState {
    plan: FaultPlan,
    rng: u64,
    /// Remaining consecutive transient failures per page.
    pending: HashMap<u32, u32>,
    /// Pages that fail every read.
    permanent: HashSet<u32>,
    /// Pages whose bytes are flipped after a successful read.
    bitrot: HashSet<u32>,
}

impl FaultState {
    /// xorshift64 — the repo's seeded-generator idiom. Never yields 0.
    fn next(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// A uniform draw in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A [`PageStore`] wrapper that injects faults per a [`FaultPlan`] —
/// see the module docs for the taxonomy. Wrap it in an `Arc` to keep a
/// scripting/counter handle after handing the store to a tree.
pub struct FaultStore<S: PageStore> {
    inner: S,
    state: Mutex<FaultState>,
    transient: AtomicU64,
    torn: AtomicU64,
    permanent: AtomicU64,
    bitrot: AtomicU64,
    delayed: AtomicU64,
    /// Remaining successful writes before the write path starts
    /// failing (`i64::MAX` = unlimited). Counts `write_page` and
    /// `commit` calls; reads are never charged.
    write_budget: AtomicI64,
    write_faults: AtomicU64,
}

/// What the injection decision said to do with one read.
enum Injection {
    /// Pass through to the delegate.
    None,
    /// Fail with a transient error.
    Transient,
    /// Partially fill the buffer, then fail.
    Torn,
    /// Fail hard — the page is scripted dead.
    Permanent,
}

impl<S: PageStore> FaultStore<S> {
    /// Wraps `inner` under `plan`. With the default plan this is a
    /// transparent (but still counting/delaying-capable) wrapper.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        assert!(
            (0.0..=1.0).contains(&plan.transient_rate) && (0.0..=1.0).contains(&plan.torn_rate),
            "fault rates must be probabilities"
        );
        FaultStore {
            inner,
            state: Mutex::new(FaultState {
                // xorshift needs a nonzero state; fold the seed in.
                rng: plan.seed | 1,
                plan,
                pending: HashMap::new(),
                permanent: HashSet::new(),
                bitrot: HashSet::new(),
            }),
            transient: AtomicU64::new(0),
            torn: AtomicU64::new(0),
            permanent: AtomicU64::new(0),
            bitrot: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
            write_budget: AtomicI64::new(i64::MAX),
            write_faults: AtomicU64::new(0),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Replaces the fault schedule and reseeds the generator from the
    /// new plan, so rate-driven injection from this point replays
    /// deterministically. Scripted faults and counters are untouched.
    ///
    /// The intended pattern is open-clean-then-arm: wrap the store with
    /// [`FaultPlan::default`] (transparent), open the index — the open
    /// path has no retry machinery in front of it — then `set_plan` the
    /// real schedule before querying.
    pub fn set_plan(&self, plan: FaultPlan) {
        assert!(
            (0.0..=1.0).contains(&plan.transient_rate) && (0.0..=1.0).contains(&plan.torn_rate),
            "fault rates must be probabilities"
        );
        let mut st = self.lock_state();
        st.rng = plan.seed | 1;
        st.plan = plan;
    }

    /// Scripts the next `times` reads of `page` to fail transiently
    /// (then recover), regardless of `transient_rate`.
    pub fn fail_page_transiently(&self, page: u32, times: u32) {
        let mut st = self.lock_state();
        *st.pending.entry(page).or_insert(0) += times;
    }

    /// Scripts `page` to fail **every** read from now on — a dead
    /// sector no retry budget recovers.
    pub fn fail_page_permanently(&self, page: u32) {
        self.lock_state().permanent.insert(page);
    }

    /// Scripts `page` to *succeed* but return rotted bytes (one byte
    /// flipped after the delegate — and any backend checksum — ran).
    pub fn rot_page(&self, page: u32) {
        self.lock_state().bitrot.insert(page);
    }

    /// Scripts the write path to "die" after `n` more successful
    /// writes: the next `n` [`PageStore::write_page`]/[`PageStore::commit`]
    /// calls pass through, then every later one fails with an injected
    /// I/O error. This is the kill-point lever for crash-consistency
    /// tests — pick `n` to land the failure before the data sync,
    /// between data sync and header flip, and so on.
    pub fn fail_writes_after(&self, n: u64) {
        let n = i64::try_from(n).unwrap_or(i64::MAX);
        self.write_budget.store(n, Ordering::SeqCst);
    }

    /// Injected write failures so far.
    pub fn write_faults(&self) -> u64 {
        self.write_faults.load(Ordering::Relaxed)
    }

    /// One decision per write-path call: consume the budget or fail.
    fn charge_write(&self, what: &str) -> Result<(), StoreError> {
        if self.write_budget.fetch_sub(1, Ordering::SeqCst) <= 0 {
            self.write_faults.fetch_add(1, Ordering::Relaxed);
            return Err(StoreError::Io(io::Error::other(format!(
                "injected write fault ({what})"
            ))));
        }
        Ok(())
    }

    /// Clears every scripted fault (pending bursts, permanent set,
    /// bit-rot set, exhausted write budget). Counters and the
    /// generator are left untouched.
    pub fn clear_faults(&self) {
        let mut st = self.lock_state();
        st.pending.clear();
        st.permanent.clear();
        st.bitrot.clear();
        drop(st);
        self.write_budget.store(i64::MAX, Ordering::SeqCst);
    }

    /// Exact injected-fault counts so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            transient: self.transient.load(Ordering::Relaxed),
            torn: self.torn.load(Ordering::Relaxed),
            permanent: self.permanent.load(Ordering::Relaxed),
            bitrot: self.bitrot.load(Ordering::Relaxed),
            delayed: self.delayed.load(Ordering::Relaxed),
        }
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, FaultState> {
        // Injection state is self-consistent after any partial update;
        // recover rather than propagate a poisoned lock.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// One decision per read of `page`: consume a pending burst, then
    /// the permanent set, then the seeded rates.
    fn decide(&self, page: u32) -> Injection {
        let mut st = self.lock_state();
        if let Some(left) = st.pending.get_mut(&page) {
            *left -= 1;
            if *left == 0 {
                st.pending.remove(&page);
            }
            return Injection::Transient;
        }
        if st.permanent.contains(&page) {
            return Injection::Permanent;
        }
        let plan = st.plan;
        if plan.transient_rate > 0.0 && st.unit() < plan.transient_rate {
            // Arm the rest of the burst (this read is failure #1).
            if plan.transient_burst > 1 {
                st.pending.insert(page, plan.transient_burst - 1);
            }
            return Injection::Transient;
        }
        if plan.torn_rate > 0.0 && st.unit() < plan.torn_rate {
            return Injection::Torn;
        }
        Injection::None
    }

    fn delay(&self) {
        let latency = self.lock_state().plan.latency;
        if let Some(latency) = latency {
            self.delayed.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(latency);
        }
    }

    /// Shared injection wrapper around one single-page read.
    fn read_with_faults(
        &self,
        page: u32,
        buf: &mut [u8],
        read: impl FnOnce(&S, u32, &mut [u8]) -> Result<(), StoreError>,
    ) -> Result<(), StoreError> {
        self.delay();
        match self.decide(page) {
            Injection::Transient => {
                self.transient.fetch_add(1, Ordering::Relaxed);
                Err(StoreError::Io(io::Error::new(
                    io::ErrorKind::Interrupted,
                    format!("injected transient fault reading page {page}"),
                )))
            }
            Injection::Torn => {
                self.torn.fetch_add(1, Ordering::Relaxed);
                // A short read: the first half arrives, the rest is
                // stale, and the syscall reports EOF.
                read(&self.inner, page, buf)?;
                for b in &mut buf[PAGE_SIZE / 2..] {
                    *b = 0;
                }
                Err(StoreError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("injected torn read of page {page}"),
                )))
            }
            Injection::Permanent => {
                self.permanent.fetch_add(1, Ordering::Relaxed);
                Err(StoreError::Io(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("injected permanent fault reading page {page}"),
                )))
            }
            Injection::None => {
                read(&self.inner, page, buf)?;
                if self.lock_state().bitrot.contains(&page) {
                    self.bitrot.fetch_add(1, Ordering::Relaxed);
                    // Flip a bit in the page's first byte: past any
                    // backend checksum, and — unlike a mid-page flip,
                    // which can land in unused padding — always inside
                    // the bytes the caller's decoder actually reads.
                    buf[0] ^= 0x40;
                }
                Ok(())
            }
        }
    }
}

impl<S: PageStore> PageStore for FaultStore<S> {
    fn meta(&self) -> StoreMeta {
        self.inner.meta()
    }

    fn read_page(&self, page: u32, buf: &mut [u8]) -> Result<(), StoreError> {
        self.read_with_faults(page, buf, |s, p, b| s.read_page(p, b))
    }

    fn read_page_uncounted(&self, page: u32, buf: &mut [u8]) -> Result<(), StoreError> {
        self.read_with_faults(page, buf, |s, p, b| s.read_page_uncounted(p, b))
    }

    fn read_run_uncounted(&self, first: u32, buf: &mut [u8]) -> Result<(), StoreError> {
        // One decision for the whole run, salted by its first page; a
        // permanent page anywhere in the run fails it (the caller's
        // prefetch machinery treats run failure as "skip speculation").
        assert_eq!(buf.len() % PAGE_SIZE, 0, "run buffer must be whole pages");
        let count = (buf.len() / PAGE_SIZE) as u32;
        self.delay();
        {
            let st = self.lock_state();
            for page in first..first.saturating_add(count) {
                if st.permanent.contains(&page) {
                    drop(st);
                    self.permanent.fetch_add(1, Ordering::Relaxed);
                    return Err(StoreError::Io(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("injected permanent fault reading page {page}"),
                    )));
                }
            }
        }
        match self.decide(first) {
            Injection::Transient | Injection::Torn => {
                self.transient.fetch_add(1, Ordering::Relaxed);
                Err(StoreError::Io(io::Error::new(
                    io::ErrorKind::Interrupted,
                    format!("injected transient fault reading run at page {first}"),
                )))
            }
            Injection::Permanent => {
                self.permanent.fetch_add(1, Ordering::Relaxed);
                Err(StoreError::Io(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("injected permanent fault reading page {first}"),
                )))
            }
            Injection::None => {
                self.inner.read_run_uncounted(first, buf)?;
                let rotted: Vec<u32> = {
                    let st = self.lock_state();
                    (0..count)
                        .map(|i| first + i)
                        .filter(|p| st.bitrot.contains(p))
                        .collect()
                };
                for page in rotted {
                    self.bitrot.fetch_add(1, Ordering::Relaxed);
                    let off = (page - first) as usize * PAGE_SIZE;
                    buf[off] ^= 0x40;
                }
                Ok(())
            }
        }
    }

    fn physical_reads(&self) -> u64 {
        self.inner.physical_reads()
    }

    fn reset_counters(&self) {
        self.inner.reset_counters();
    }

    fn sync(&self) -> Result<(), StoreError> {
        self.inner.sync()
    }

    fn is_writable(&self) -> bool {
        self.inner.is_writable()
    }

    fn write_page(&self, page: u32, buf: &[u8]) -> Result<(), StoreError> {
        self.charge_write("write_page")?;
        self.inner.write_page(page, buf)
    }

    fn grow(&self, additional: u32) -> Result<u32, StoreError> {
        // Growth is metadata-only until a write lands in the new
        // pages; it does not consume the write budget.
        self.inner.grow(additional)
    }

    fn commit(&self, root_page: u32, user: [u64; 4]) -> Result<(), StoreError> {
        self.charge_write("commit")?;
        self.inner.commit(root_page, user)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn sample_pages(n: usize) -> Vec<[u8; PAGE_SIZE]> {
        (0..n)
            .map(|i| {
                let mut p = [0u8; PAGE_SIZE];
                for (j, b) in p.iter_mut().enumerate() {
                    *b = ((i * 131 + j * 7) % 251) as u8;
                }
                p
            })
            .collect()
    }

    fn mem(n: usize) -> MemStore {
        MemStore::new(sample_pages(n), 0, [0; 4]).unwrap()
    }

    #[test]
    fn default_plan_is_transparent() {
        let fs = FaultStore::new(mem(3), FaultPlan::default());
        let mut buf = [0u8; PAGE_SIZE];
        for p in 0..3 {
            fs.read_page(p, &mut buf).unwrap();
            assert_eq!(buf[..], sample_pages(3)[p as usize][..]);
        }
        assert_eq!(fs.stats(), FaultStats::default());
        assert_eq!(fs.physical_reads(), 3);
    }

    #[test]
    fn scripted_transient_fails_then_recovers() {
        let fs = FaultStore::new(mem(2), FaultPlan::default());
        fs.fail_page_transiently(1, 2);
        let mut buf = [0u8; PAGE_SIZE];
        assert!(fs.read_page(1, &mut buf).is_err());
        assert!(fs.read_page(1, &mut buf).is_err());
        fs.read_page(1, &mut buf).unwrap();
        assert_eq!(buf[..], sample_pages(2)[1][..]);
        assert_eq!(fs.stats().transient, 2);
        // Other pages were never affected.
        fs.read_page(0, &mut buf).unwrap();
        assert_eq!(fs.stats().transient, 2);
    }

    #[test]
    fn permanent_page_never_recovers() {
        let fs = FaultStore::new(mem(2), FaultPlan::default());
        fs.fail_page_permanently(0);
        let mut buf = [0u8; PAGE_SIZE];
        for _ in 0..5 {
            assert!(fs.read_page(0, &mut buf).is_err());
        }
        assert_eq!(fs.stats().permanent, 5);
        fs.read_page(1, &mut buf).unwrap();
    }

    #[test]
    fn bitrot_returns_ok_with_flipped_byte() {
        let fs = FaultStore::new(mem(2), FaultPlan::default());
        fs.rot_page(1);
        let mut buf = [0u8; PAGE_SIZE];
        fs.read_page(1, &mut buf).unwrap();
        let clean = sample_pages(2)[1];
        assert_ne!(buf[..], clean[..], "bytes arrive corrupted");
        assert_eq!(buf[0], clean[0] ^ 0x40);
        assert_eq!(fs.stats().bitrot, 1);
    }

    #[test]
    fn seeded_rate_is_replayable_and_counted_exactly() {
        let run = |seed| {
            let fs = FaultStore::new(mem(8), FaultPlan::transient(0.3, seed));
            let mut buf = [0u8; PAGE_SIZE];
            let mut outcomes = Vec::new();
            for i in 0..200u32 {
                outcomes.push(fs.read_page(i % 8, &mut buf).is_ok());
            }
            (outcomes, fs.stats())
        };
        let (a_outcomes, a_stats) = run(7);
        let (b_outcomes, b_stats) = run(7);
        assert_eq!(a_outcomes, b_outcomes, "same seed, same schedule");
        assert_eq!(a_stats, b_stats);
        let failures = a_outcomes.iter().filter(|ok| !**ok).count() as u64;
        assert_eq!(a_stats.transient, failures, "every fault counted once");
        assert!(failures > 0, "a 30% rate over 200 reads must fire");
        let (c_outcomes, _) = run(8);
        assert_ne!(a_outcomes, c_outcomes, "different seed, different schedule");
    }

    #[test]
    fn torn_read_partially_fills_and_errors_once() {
        let fs = FaultStore::new(
            mem(1),
            FaultPlan {
                torn_rate: 1.0,
                ..FaultPlan::default()
            },
        );
        let mut buf = [0xAAu8; PAGE_SIZE];
        let err = fs.read_page(0, &mut buf).unwrap_err();
        assert!(err.to_string().contains("torn"));
        let clean = sample_pages(1)[0];
        assert_eq!(buf[..PAGE_SIZE / 2], clean[..PAGE_SIZE / 2], "prefix real");
        assert!(buf[PAGE_SIZE / 2..].iter().all(|&b| b == 0), "tail short");
        assert_eq!(fs.stats().torn, 1);
    }

    #[test]
    fn runs_respect_permanent_and_bitrot_scripts() {
        let fs = FaultStore::new(mem(6), FaultPlan::default());
        let mut buf = vec![0u8; 3 * PAGE_SIZE];
        fs.read_run_uncounted(1, &mut buf).unwrap();
        fs.rot_page(2);
        fs.read_run_uncounted(1, &mut buf).unwrap();
        let clean = sample_pages(6)[2];
        assert_eq!(buf[PAGE_SIZE], clean[0] ^ 0x40);
        fs.fail_page_permanently(3);
        assert!(fs.read_run_uncounted(1, &mut buf).is_err());
        assert_eq!(fs.stats().permanent, 1);
        fs.clear_faults();
        fs.read_run_uncounted(1, &mut buf).unwrap();
    }

    #[test]
    fn uncounted_reads_inject_too() {
        let fs = FaultStore::new(mem(2), FaultPlan::default());
        fs.fail_page_transiently(0, 1);
        let mut buf = [0u8; PAGE_SIZE];
        assert!(fs.read_page_uncounted(0, &mut buf).is_err());
        fs.read_page_uncounted(0, &mut buf).unwrap();
        assert_eq!(fs.stats().transient, 1);
        assert_eq!(fs.physical_reads(), 0, "uncounted stays uncounted");
    }

    #[test]
    fn latency_is_applied_and_counted() {
        let fs = FaultStore::new(
            mem(1),
            FaultPlan {
                latency: Some(Duration::from_millis(2)),
                ..FaultPlan::default()
            },
        );
        let mut buf = [0u8; PAGE_SIZE];
        let t0 = std::time::Instant::now();
        fs.read_page(0, &mut buf).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(2));
        assert_eq!(fs.stats().delayed, 1);
    }
}
