//! `nwc-store`: a disk-backed page store and buffer pool for the NWC
//! R\*-tree.
//!
//! The paper measures query cost in R\*-tree node reads — each node is
//! one 4 KiB page. This crate supplies the storage layer that makes
//! that metric physical:
//!
//! - [`PageStore`] — the backend trait: read a page, report physical
//!   reads, sync. Two implementations:
//!   - [`MemStore`] — pages in a `Vec`; for tests and corruption
//!     injection.
//!   - [`FileStore`] — a real on-disk page file with a magic/version
//!     header and a per-page CRC-32 checksum table; corrupt or
//!     truncated files are rejected with typed [`StoreError`]s, never
//!     panics.
//! - [`FaultStore`] — a seeded, scriptable fault-injection wrapper over
//!   any backend (transient errors, dead pages, bit-rot, torn reads,
//!   latency) with exact injected-fault counters, plus [`RetryPolicy`]:
//!   the bounded, deterministically-jittered retry budget the tree's
//!   read path consumes.
//! - [`BufferPool`] — a fixed-capacity page cache with **exact LRU**
//!   eviction, pin/unpin, and hit/miss/eviction counters. LRU (a stack
//!   algorithm) makes hit rate provably non-decreasing in capacity,
//!   which the buffer-sweep experiment depends on.
//!
//! The crate is deliberately free-standing (no dependency on the tree
//! crates): it stores opaque [`PAGE_SIZE`]-byte pages plus four `u64`
//! words of caller metadata. `nwc-rtree` layers node encoding and the
//! query-time charging discipline on top.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checksum;
mod error;
mod executor;
mod fault;
mod pool;
mod retry;
mod store;

/// Bytes per page. Matches the paper's 4 KiB R\*-tree page size and the
/// `nwc-rtree` page codec.
pub const PAGE_SIZE: usize = 4096;

pub use checksum::crc32;
pub use error::StoreError;
pub use executor::{InflightTable, IoExecutor, ReadRunCompletion};
pub use fault::{FaultPlan, FaultStats, FaultStore};
pub use pool::{split_capacity, Access, BufferPool, PoolStats};
pub use retry::RetryPolicy;
pub use store::{FileStore, MemStore, PageStore, StoreMeta};
