//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! The workspace builds offline (no crates-io), so the checksum is
//! implemented here rather than pulled in. CRC-32 is the classic
//! page-checksum choice: cheap (one table lookup per byte), and it
//! detects all burst errors up to 32 bits plus any odd number of bit
//! flips — the failure modes torn or bit-rotted 4 KiB pages actually
//! exhibit.

/// The reflected IEEE polynomial, as used by zlib/PNG/ethernet.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `data` (IEEE, reflected, init/final XOR `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut page = vec![0xA5u8; 4096];
        let clean = crc32(&page);
        for bit in [0usize, 1, 9, 4095 * 8 + 7] {
            page[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&page), clean, "bit {bit} flip undetected");
            page[bit / 8] ^= 1 << (bit % 8);
        }
        assert_eq!(crc32(&page), clean);
    }
}
