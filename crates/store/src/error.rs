//! Typed errors for the page store and buffer pool.

use std::io;

/// An error produced while opening, reading, or writing a page store.
///
/// Every failure mode is a typed variant — corrupt files are *rejected*,
/// never a source of panics or undefined behavior.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// The file does not start with the store magic; it is not a page
    /// file (or it was truncated before the header).
    BadMagic,
    /// The file's format version is not one this build understands.
    BadVersion(u32),
    /// The header declares a page size different from [`PAGE_SIZE`]
    /// (`crate::PAGE_SIZE`).
    BadPageSize(u32),
    /// The header checksum does not match the header bytes.
    HeaderChecksum,
    /// The file is shorter than its header says it should be.
    Truncated {
        /// Bytes the header implies the file holds.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The header's root page id is outside the file.
    BadRoot {
        /// The out-of-range root page id.
        root: u32,
        /// Number of pages in the file.
        page_count: u32,
    },
    /// A page read produced bytes whose checksum does not match the
    /// checksum recorded at write time: the page is corrupt.
    PageChecksum {
        /// The corrupt page.
        page: u32,
    },
    /// A read referenced a page id beyond the file.
    PageOutOfRange {
        /// The requested page.
        page: u32,
        /// Number of pages in the store.
        page_count: u32,
    },
    /// The store holds no pages (a page file must at least hold a root).
    Empty,
    /// A write, grow, or commit was attempted on a store without a
    /// write path: a read-only backend, a version-1 page file, or a
    /// version-2 file opened without write permission.
    ReadOnly,
    /// Another live process holds the advisory lock on this page file:
    /// opening (or re-creating) it now could corrupt a reader. The lock
    /// is a `<name>.lock` sibling; a crashed holder's stale lock is
    /// reclaimed automatically when its process is gone.
    Locked {
        /// Path of the lock file that is held.
        lock_path: std::path::PathBuf,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "page store I/O error: {e}"),
            StoreError::BadMagic => write!(f, "not a page file (bad magic)"),
            StoreError::BadVersion(v) => write!(f, "unsupported page file version {v}"),
            StoreError::BadPageSize(s) => write!(f, "unsupported page size {s}"),
            StoreError::HeaderChecksum => write!(f, "header checksum mismatch"),
            StoreError::Truncated { expected, actual } => {
                write!(f, "file truncated: expected {expected} bytes, found {actual}")
            }
            StoreError::BadRoot { root, page_count } => {
                write!(f, "root page {root} out of range (file holds {page_count} pages)")
            }
            StoreError::PageChecksum { page } => {
                write!(f, "checksum mismatch reading page {page} (corrupt page)")
            }
            StoreError::PageOutOfRange { page, page_count } => {
                write!(f, "page {page} out of range (store holds {page_count} pages)")
            }
            StoreError::Empty => write!(f, "page store holds no pages"),
            StoreError::ReadOnly => write!(
                f,
                "page store is read-only (no write path on this backend or file version)"
            ),
            StoreError::Locked { lock_path } => {
                write!(
                    f,
                    "page file is locked by another process (lock file {})",
                    lock_path.display()
                )
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StoreError::PageChecksum { page: 7 };
        assert!(e.to_string().contains("page 7"));
        let e = StoreError::Truncated { expected: 100, actual: 10 };
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn io_source_is_preserved() {
        use std::error::Error;
        let e = StoreError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
    }
}
