//! A std-only completion thread pool for overlapped page reads.
//!
//! The readahead pipeline coalesces prefetch candidates into contiguous
//! runs, but until now it issued those runs synchronously on the
//! descending thread — the query stalled for the device even though the
//! read was advisory. [`IoExecutor`] moves the physical read off the
//! query thread: the tree submits a run plus a completion closure and
//! keeps descending/decoding while a worker blocks on the device; the
//! completion lands the pages in the buffer pool exactly like a
//! synchronous prefetch would.
//!
//! [`InflightTable`] is the companion dedupe structure: a registry of
//! page ids whose reads are currently in flight. Submitting a page that
//! is already in flight is refused (no duplicate physical read), and a
//! demand fault on an in-flight page can wait for the pending
//! completion instead of re-reading the page itself.
//!
//! Both types are plain `std` (`Mutex` + `Condvar`); no async runtime,
//! no new dependencies. Poisoned locks are recovered with
//! [`PoisonError::into_inner`] like everywhere else in the workspace —
//! all guarded state stays consistent under panic because every
//! critical section only moves values in or out of collections.

use crate::error::StoreError;
use crate::store::PageStore;
use crate::PAGE_SIZE;
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A queued unit of work: the boxed closure a worker runs to completion.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Completion callback of [`IoExecutor::submit_read_run`]: receives the
/// read bytes (whole pages, in run order) or the first error, plus the
/// wall-clock time the physical read spent on the worker — the
/// device-overlap window the query thread did *not* wait for.
pub type ReadRunCompletion =
    Box<dyn FnOnce(Result<Vec<u8>, StoreError>, Duration) + Send + 'static>;

struct ExecutorShared {
    queue: Mutex<VecDeque<Job>>,
    /// Signals workers that the queue is non-empty (or shutting down).
    work: Condvar,
    /// Signals waiters that `in_flight` may have reached zero.
    idle: Condvar,
    /// Jobs queued or running. Guarded by `queue`'s mutex for the
    /// condvar handshake in [`IoExecutor::wait_idle`].
    in_flight: AtomicUsize,
    /// Set under the queue lock at shutdown.
    shutdown: Mutex<bool>,
}

/// A fixed-size worker pool that runs submitted I/O jobs to completion.
///
/// Dropping the executor drains the queue (every submitted job still
/// runs), then joins the workers — so a completion closure can rely on
/// running exactly once, and callers can rely on no completion firing
/// after the executor is gone.
pub struct IoExecutor {
    shared: Arc<ExecutorShared>,
    workers: Vec<JoinHandle<()>>,
}

impl IoExecutor {
    /// A pool of `threads` workers (`threads` ≥ 1). If the OS refuses a
    /// thread (resource exhaustion), the pool keeps whatever workers it
    /// got; with zero workers it degrades to running jobs inline at
    /// submit time — synchronous, but still correct, since overlapping
    /// is an optimization and never a requirement.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(ExecutorShared {
            queue: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
            idle: Condvar::new(),
            in_flight: AtomicUsize::new(0),
            shutdown: Mutex::new(false),
        });
        let workers = (0..threads)
            .map_while(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("nwc-io-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .ok()
            })
            .collect();
        IoExecutor { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Jobs queued or currently running.
    pub fn pending(&self) -> usize {
        self.shared.in_flight.load(Ordering::Acquire)
    }

    /// Enqueues an arbitrary job. Never blocks on the device — only on
    /// the (short) queue lock.
    pub fn submit(&self, job: Job) {
        // Degraded pool (no worker thread could be spawned): run the
        // job inline so nothing queued is ever lost or left pending.
        if self.workers.is_empty() {
            job();
            return;
        }
        let mut queue = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        self.shared.in_flight.fetch_add(1, Ordering::AcqRel);
        queue.push_back(job);
        drop(queue);
        self.shared.work.notify_one();
    }

    /// Submits a coalesced read of `pages` whole pages starting at page
    /// `first`: a worker allocates the buffer, times
    /// [`PageStore::read_run_uncounted`], and hands the result to
    /// `complete`. The submitting thread returns immediately.
    pub fn submit_read_run(
        &self,
        store: Arc<dyn PageStore>,
        first: u32,
        pages: usize,
        complete: ReadRunCompletion,
    ) {
        self.submit(Box::new(move || {
            let mut buf = vec![0u8; pages * PAGE_SIZE];
            let started = Instant::now();
            let result = store.read_run_uncounted(first, &mut buf).map(|()| buf);
            complete(result, started.elapsed());
        }));
    }

    /// Blocks until every job submitted so far has completed. Used by
    /// reset/teardown paths that need the pool and counters quiescent
    /// before touching them.
    pub fn wait_idle(&self) {
        let mut queue = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while self.shared.in_flight.load(Ordering::Acquire) > 0 {
            queue = self
                .shared
                .idle
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

impl Drop for IoExecutor {
    fn drop(&mut self) {
        {
            let mut down = self
                .shared
                .shutdown
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            *down = true;
        }
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &ExecutorShared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if *shared
                    .shutdown
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                {
                    return;
                }
                queue = shared
                    .work
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        job();
        // Balance the submit-side increment; wake idle waiters when the
        // last job lands. The lock round-trip makes the decrement and
        // the notify atomic with respect to `wait_idle`'s check.
        let queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
        let left = shared.in_flight.fetch_sub(1, Ordering::AcqRel) - 1;
        drop(queue);
        if left == 0 {
            shared.idle.notify_all();
        }
    }
}

/// A registry of page ids with physical reads currently in flight.
///
/// Two guarantees follow from funneling all overlapped reads through
/// one table:
///
/// - **Dedupe:** [`InflightTable::begin`] admits a page id at most once
///   at a time, so concurrent readahead for the same page issues one
///   physical read, not several.
/// - **Wait-not-reread:** a demand fault can call
///   [`InflightTable::wait_done`] to block until the pending read
///   completes and its bytes are in the pool, instead of issuing a
///   second read for the same page.
#[derive(Default)]
pub struct InflightTable {
    pages: Mutex<HashSet<u32>>,
    done: Condvar,
}

impl InflightTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `page` as in flight. Returns `false` (and registers
    /// nothing) if a read for the page is already pending — the caller
    /// must then skip its own read.
    pub fn begin(&self, page: u32) -> bool {
        self.pages
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(page)
    }

    /// Marks `page`'s read complete and wakes every waiter. Call only
    /// after the page's bytes are visible to waiters (e.g. admitted to
    /// the buffer pool) — waiters re-check the pool, not this table.
    pub fn complete(&self, page: u32) {
        let mut pages = self.pages.lock().unwrap_or_else(PoisonError::into_inner);
        pages.remove(&page);
        drop(pages);
        self.done.notify_all();
    }

    /// If `page` has a read in flight, blocks until it completes and
    /// returns `true`; otherwise returns `false` immediately.
    pub fn wait_done(&self, page: u32) -> bool {
        let mut pages = self.pages.lock().unwrap_or_else(PoisonError::into_inner);
        if !pages.contains(&page) {
            return false;
        }
        while pages.contains(&page) {
            pages = self
                .done
                .wait(pages)
                .unwrap_or_else(PoisonError::into_inner);
        }
        true
    }

    /// Number of reads currently in flight (diagnostics / tests).
    pub fn len(&self) -> usize {
        self.pages
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether no read is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn jobs_run_and_wait_idle_blocks_until_done() {
        let ex = IoExecutor::new(2);
        let hits = Arc::new(AtomicU32::new(0));
        for _ in 0..32 {
            let hits = Arc::clone(&hits);
            ex.submit(Box::new(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            }));
        }
        ex.wait_idle();
        assert_eq!(hits.load(Ordering::Relaxed), 32);
        assert_eq!(ex.pending(), 0);
    }

    #[test]
    fn drop_drains_the_queue() {
        let hits = Arc::new(AtomicU32::new(0));
        {
            let ex = IoExecutor::new(1);
            for _ in 0..16 {
                let hits = Arc::clone(&hits);
                ex.submit(Box::new(move || {
                    std::thread::sleep(Duration::from_micros(50));
                    hits.fetch_add(1, Ordering::Relaxed);
                }));
            }
        }
        assert_eq!(hits.load(Ordering::Relaxed), 16, "drop must drain");
    }

    #[test]
    fn read_run_completion_gets_page_bytes() {
        let pages: Vec<[u8; PAGE_SIZE]> = (0..4u8)
            .map(|p| {
                let mut page = [0u8; PAGE_SIZE];
                page[0] = p + 10;
                page
            })
            .collect();
        let store: Arc<dyn PageStore> =
            Arc::new(MemStore::new(pages, 0, [0; 4]).expect("valid store"));
        let ex = IoExecutor::new(1);
        let got: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&got);
        ex.submit_read_run(
            store,
            1,
            2,
            Box::new(move |res, elapsed| {
                assert!(elapsed <= Duration::from_secs(5));
                *sink.lock().unwrap() = res.expect("read ok");
            }),
        );
        ex.wait_idle();
        let bytes = got.lock().unwrap();
        assert_eq!(bytes.len(), 2 * PAGE_SIZE);
        assert_eq!(bytes[0], 11, "page 1 first");
        assert_eq!(bytes[PAGE_SIZE], 12, "then page 2");
    }

    #[test]
    fn inflight_dedupes_and_wakes_waiters() {
        let t = Arc::new(InflightTable::new());
        assert!(t.begin(7));
        assert!(!t.begin(7), "second begin must be refused");
        assert!(t.begin(8));
        assert_eq!(t.len(), 2);

        let waiter = {
            let t = Arc::clone(&t);
            std::thread::spawn(move || t.wait_done(7))
        };
        // Give the waiter time to block, then complete.
        std::thread::sleep(Duration::from_millis(10));
        t.complete(7);
        assert!(waiter.join().unwrap(), "waiter saw an in-flight read");
        assert!(!t.wait_done(7), "completed page returns immediately");
        t.complete(8);
        assert!(t.is_empty());
    }
}
