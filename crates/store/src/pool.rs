//! A fixed-capacity buffer pool with LRU eviction, pinning, lock-striped
//! shards, prefetch admission, and hit/miss/eviction accounting.
//!
//! The pool is the layer that turns the paper's I/O metric physical:
//! query code asks the pool for a page; a resident page is a **buffer
//! hit** (no I/O), a non-resident one is a **miss** that invokes the
//! caller's loader (a real [`PageStore`](crate::PageStore) read) and may
//! **evict** the least-recently-used unpinned frame.
//!
//! Eviction is *exact* LRU — not the CLOCK approximation — because LRU
//! is a stack algorithm: for a fixed reference string its hit count is
//! non-decreasing in capacity (the inclusion property). The buffer-sweep
//! experiment relies on that monotonicity; CLOCK does not guarantee it.
//! (Pinning can perturb the victim choice, but pinned pages are the
//! most recently used ones on a traversal path, which plain LRU would
//! not victimize either except at degenerate capacities.) The LRU
//! victim scan is `O(capacity)` per miss, which is noise next to the
//! page read the miss already pays for.
//!
//! # Sharding
//!
//! [`BufferPool::with_shards`] splits the frame table into N lock
//! striped shards. A page maps to a shard by a Fibonacci hash of its id,
//! each shard runs its own exact LRU over its slice of the capacity, and
//! the counters stay global atomics — so aggregate hit/miss/eviction
//! accounting is identical in shape to the single-lock pool while batch
//! query threads no longer serialize on one mutex. Because the reference
//! string seen by each shard is a fixed subsequence of the global one
//! (the page→shard map does not depend on capacity) and the per-shard
//! capacities grow monotonically with the total, the inclusion property
//! holds *per shard* and therefore in aggregate. [`BufferPool::new`]
//! remains exactly the single-shard pool.
//!
//! # Prefetch frames
//!
//! [`BufferPool::admit_prefetched`] inserts a page that was read ahead
//! of demand (readahead) as an ordinary unpinned frame, flagged
//! `prefetched`. Admission touches **no** hit/miss counter — logical I/O
//! accounting is reserved for demand accesses. The first demand access
//! to such a frame returns [`Access::PrefetchHit`] (counted as a normal
//! hit plus a `prefetch_hits` tick) and clears the flag; a prefetched
//! frame that is evicted or cleared before any demand access counts as
//! `prefetch_waste`. So `prefetched == prefetch_hits + prefetch_waste +
//! still-resident-untouched` at all times.
//!
//! All methods take `&self`: the frame tables live behind mutexes (loads
//! included — misses on one shard are serialized, as the metadata of a
//! real pool's latching would be) and the counters are relaxed atomics,
//! so one pool can serve every query thread of a
//! [`QueryEngine`]-style batch runner.
//!
//! # Panic safety
//!
//! A caller closure (`load`/`read`) that panics unwinds while a shard
//! mutex is held and poisons it. The frame table has no invariant a
//! mid-panic unwind can break (the worst case is one unmapped frame
//! slot, which a later miss re-victimizes), so every lock site recovers
//! with [`PoisonError::into_inner`] instead of propagating the panic:
//! one crashing query thread never bricks the pool for the others.
//!
//! # Eviction hook
//!
//! [`BufferPool::set_evict_hook`] registers a callback fired — under the
//! owning shard's lock — whenever a page leaves the pool (LRU eviction
//! or [`BufferPool::clear`]). Clients caching state keyed by page id
//! (the R\*-tree's decoded-node cache) use it to drop their entry in the
//! same critical section, so cached state never outlives page residency.

use crate::error::StoreError;
use crate::PAGE_SIZE;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// How the pool satisfied a page request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Access {
    /// The page was resident: no physical I/O happened.
    Hit,
    /// The page was resident because readahead admitted it and this is
    /// the first demand access: no physical I/O happened *now* (the
    /// prefetch already paid it, off the demand counters). Counted as a
    /// hit.
    PrefetchHit,
    /// The page was loaded by the supplied loader: one physical read.
    Miss,
}

/// A snapshot of the pool's counters and occupancy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests satisfied without I/O (including prefetch hits).
    pub hits: u64,
    /// Requests that invoked the loader (physical reads).
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Maximum resident pages (`usize::MAX` for an unbounded pool).
    pub capacity: usize,
    /// Pages currently resident.
    pub resident: usize,
    /// Resident pages with at least one outstanding pin. A steady-state
    /// value above zero after all guards have dropped indicates a pin
    /// leak.
    pub pinned: usize,
    /// Pages admitted by [`BufferPool::admit_prefetched`].
    pub prefetched: u64,
    /// Prefetched pages that later served a demand access.
    pub prefetch_hits: u64,
    /// Prefetched pages evicted or cleared before any demand access.
    pub prefetch_waste: u64,
}

impl PoolStats {
    /// `hits / (hits + misses)`, or 0 when nothing was requested.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Frame {
    page: u32,
    pins: u32,
    last_used: u64,
    /// Admitted by readahead and not yet demanded.
    prefetched: bool,
    data: Box<[u8]>,
}

#[derive(Default)]
struct Inner {
    frames: Vec<Frame>,
    /// page id → index into `frames`.
    map: HashMap<u32, usize>,
    /// Frame slots holding no page (after a failed load or `clear`).
    free: Vec<usize>,
    /// LRU clock: monotonically increasing use stamp.
    tick: u64,
}

/// One lock stripe: a slice of the capacity with its own LRU.
struct Shard {
    capacity: usize,
    inner: Mutex<Inner>,
}

/// Callback invoked (under the owning shard's lock) when a page leaves
/// the pool.
pub type EvictHook = Box<dyn Fn(u32) + Send + Sync>;

/// Splits a total frame budget of `capacity` pages as evenly as
/// possible into `parts` shares: part `i` receives `capacity / n`
/// frames plus one of the remainder when `i < capacity % n`, where
/// `n = parts.clamp(1, capacity)` (never more parts than frames, so
/// every share is at least 1).
///
/// Every share is **monotone in the total**: growing `capacity` never
/// shrinks any share, which is what lets the LRU inclusion property
/// survive both the pool's internal lock striping
/// ([`BufferPool::with_shards`] uses exactly this split) and the
/// sharded-index layer that budgets one capacity across several
/// per-shard pools.
///
/// # Panics
///
/// Panics when `capacity` is zero — there is nothing to split.
pub fn split_capacity(capacity: usize, parts: usize) -> Vec<usize> {
    assert!(capacity >= 1, "cannot split a zero frame budget");
    let n = parts.clamp(1, capacity);
    let base = capacity / n;
    let rem = capacity % n;
    (0..n).map(|i| base + usize::from(i < rem)).collect()
}

/// A fixed-capacity page buffer. See the module docs.
pub struct BufferPool {
    capacity: usize,
    shards: Box<[Shard]>,
    evict_hook: OnceLock<EvictHook>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    prefetched: AtomicU64,
    prefetch_hits: AtomicU64,
    prefetch_waste: AtomicU64,
}

impl BufferPool {
    /// A single-shard pool holding at most `capacity` pages — exactly
    /// the classic one-lock exact-LRU pool.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero — a pool that can hold nothing
    /// cannot satisfy even a single load.
    pub fn new(capacity: usize) -> Self {
        BufferPool::with_shards(capacity, 1)
    }

    /// A pool holding at most `capacity` pages split across `shards`
    /// lock stripes. `shards` is clamped to `[1, capacity]`; the
    /// capacity is divided as evenly as possible (shard `i` gets
    /// `capacity/n`, plus one of the remainder for the first
    /// `capacity % n` shards), which keeps every per-shard capacity
    /// monotone in the total — the inclusion property survives
    /// sharding.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        assert!(capacity >= 1, "buffer pool capacity must be at least 1");
        let shares = split_capacity(capacity, shards);
        let shards: Box<[Shard]> = shares
            .into_iter()
            .map(|cap| Shard {
                capacity: cap,
                inner: Mutex::new(Inner::default()),
            })
            .collect();
        BufferPool {
            capacity,
            shards,
            evict_hook: OnceLock::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            prefetched: AtomicU64::new(0),
            prefetch_hits: AtomicU64::new(0),
            prefetch_waste: AtomicU64::new(0),
        }
    }

    /// A pool that never evicts (capacity `usize::MAX`). Every page
    /// misses exactly once and hits forever after.
    pub fn unbounded() -> Self {
        BufferPool::new(usize::MAX)
    }

    /// The configured total capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of lock stripes.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Registers the eviction callback (at most once, before queries
    /// start). Fired under the owning shard's lock for every page
    /// dropped by LRU eviction or [`BufferPool::clear`]; the hook must
    /// not call back into the pool.
    ///
    /// # Panics
    ///
    /// Panics when a hook was already registered.
    pub fn set_evict_hook(&self, hook: EvictHook) {
        if self.evict_hook.set(hook).is_err() {
            panic!("buffer pool evict hook already set");
        }
    }

    /// The shard owning `page`: identity for a single stripe, a
    /// Fibonacci hash of the page id otherwise (page ids are dense and
    /// sequential, so plain modulo would stripe sibling pages — which a
    /// clustered layout makes *consecutive* — onto the same few shards).
    #[inline]
    fn shard_for(&self, page: u32) -> &Shard {
        let n = self.shards.len();
        if n == 1 {
            return &self.shards[0];
        }
        let h = (page as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33;
        &self.shards[(h as usize) % n]
    }

    /// Locks a shard's frame table, recovering from poisoning: a panic
    /// in a caller closure cannot corrupt the table (see the module
    /// docs), so the lock stays usable for every other thread.
    fn lock_shard<'a>(&self, shard: &'a Shard) -> MutexGuard<'a, Inner> {
        shard.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[inline]
    fn fire_evict_hook(&self, page: u32) {
        if let Some(hook) = self.evict_hook.get() {
            hook(page);
        }
    }

    /// Requests `page`, invoking `load` to fill the frame on a miss.
    /// Returns whether the request was a hit or a [`Access::Miss`]; a
    /// failed load caches nothing and surfaces the loader's error.
    pub fn access(
        &self,
        page: u32,
        load: impl FnOnce(&mut [u8]) -> Result<(), StoreError>,
    ) -> Result<Access, StoreError> {
        self.with_page(page, load, |_| ()).map(|(access, ())| access)
    }

    /// As [`BufferPool::access`], additionally running `read` over the
    /// resident page bytes (under the shard lock) and returning its
    /// value.
    pub fn with_page<R>(
        &self,
        page: u32,
        load: impl FnOnce(&mut [u8]) -> Result<(), StoreError>,
        read: impl FnOnce(&[u8]) -> R,
    ) -> Result<(Access, R), StoreError> {
        self.request(page, load, |bytes, _cached| read(bytes), false)
            .map(|(access, _cached, r)| (access, r))
    }

    /// As [`BufferPool::with_page`], but the page is additionally
    /// **pinned** when it is (or becomes) resident — release with
    /// [`BufferPool::unpin`]. Pins nest. `read` runs under the shard
    /// lock and receives `cached = false` only on the
    /// all-frames-pinned fallback, where the bytes live in a throwaway
    /// scratch buffer and no pin is taken (there is nothing resident to
    /// pin).
    ///
    /// This is the one-critical-section primitive behind demand paging:
    /// hit/miss classification, loading, pinning and the caller's
    /// decode-and-cache step all happen atomically with respect to
    /// eviction, so a decoded node can never outlive its page's
    /// residency unnoticed.
    pub fn pin_with_page<R>(
        &self,
        page: u32,
        load: impl FnOnce(&mut [u8]) -> Result<(), StoreError>,
        read: impl FnOnce(&[u8], bool) -> R,
    ) -> Result<(Access, bool, R), StoreError> {
        self.request(page, load, read, true)
    }

    /// Shared hit/miss/scratch machinery for `with_page` and
    /// `pin_with_page`.
    fn request<R>(
        &self,
        page: u32,
        load: impl FnOnce(&mut [u8]) -> Result<(), StoreError>,
        read: impl FnOnce(&[u8], bool) -> R,
        pin: bool,
    ) -> Result<(Access, bool, R), StoreError> {
        let shard = self.shard_for(page);
        let mut inner = self.lock_shard(shard);
        inner.tick += 1;
        let tick = inner.tick;

        if let Some(&idx) = inner.map.get(&page) {
            let frame = &mut inner.frames[idx];
            frame.last_used = tick;
            if pin {
                frame.pins += 1;
            }
            let access = if frame.prefetched {
                frame.prefetched = false;
                self.prefetch_hits.fetch_add(1, Ordering::Relaxed);
                Access::PrefetchHit
            } else {
                Access::Hit
            };
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((access, true, read(&frame.data, true)));
        }

        self.misses.fetch_add(1, Ordering::Relaxed);
        match self.claim_frame(shard.capacity, &mut inner) {
            Some(idx) => {
                let frame = &mut inner.frames[idx];
                if let Err(e) = load(&mut frame.data) {
                    // The frame holds partial bytes: leave it unmapped.
                    inner.free.push(idx);
                    return Err(e);
                }
                let frame = &mut inner.frames[idx];
                frame.page = page;
                frame.pins = u32::from(pin);
                frame.last_used = tick;
                frame.prefetched = false;
                inner.map.insert(page, idx);
                let r = read(&inner.frames[idx].data, true);
                Ok((Access::Miss, true, r))
            }
            None => {
                // Every frame is pinned: perform the read without
                // caching it (still one physical read, no eviction).
                let mut scratch = vec![0u8; PAGE_SIZE];
                load(&mut scratch)?;
                Ok((Access::Miss, false, read(&scratch, false)))
            }
        }
    }

    /// Admits a page read by readahead as an unpinned, `prefetched`
    /// resident frame. No hit/miss counter moves — demand accounting is
    /// untouched. Returns `false` (and admits nothing) when the page is
    /// already resident or when every frame of its shard is pinned; an
    /// eviction to make room is counted (and hooked) as usual.
    pub fn admit_prefetched(&self, page: u32, bytes: &[u8]) -> bool {
        assert_eq!(bytes.len(), PAGE_SIZE, "prefetch buffer must be one page");
        let shard = self.shard_for(page);
        let mut inner = self.lock_shard(shard);
        if inner.map.contains_key(&page) {
            return false;
        }
        inner.tick += 1;
        let tick = inner.tick;
        let Some(idx) = self.claim_frame(shard.capacity, &mut inner) else {
            return false;
        };
        let frame = &mut inner.frames[idx];
        frame.data.copy_from_slice(bytes);
        frame.page = page;
        frame.pins = 0;
        frame.last_used = tick;
        frame.prefetched = true;
        inner.map.insert(page, idx);
        self.prefetched.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Whether `page` is currently resident. Touches no counter and no
    /// LRU stamp — this is the readahead path's duplicate filter, not a
    /// demand access.
    pub fn contains(&self, page: u32) -> bool {
        self.lock_shard(self.shard_for(page)).map.contains_key(&page)
    }

    /// Finds a frame for a new page: a free slot, a new allocation under
    /// the shard's capacity, or the LRU unpinned victim (firing the
    /// evict hook). `None` when every frame is pinned.
    fn claim_frame(&self, capacity: usize, inner: &mut Inner) -> Option<usize> {
        if let Some(idx) = inner.free.pop() {
            return Some(idx);
        }
        if inner.frames.len() < capacity {
            inner.frames.push(Frame {
                page: u32::MAX,
                pins: 0,
                last_used: 0,
                prefetched: false,
                data: vec![0u8; PAGE_SIZE].into_boxed_slice(),
            });
            return Some(inner.frames.len() - 1);
        }
        let victim = inner
            .frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.pins == 0)
            .min_by_key(|(_, f)| f.last_used)
            .map(|(i, _)| i)?;
        let old_page = inner.frames[victim].page;
        if inner.frames[victim].prefetched {
            self.prefetch_waste.fetch_add(1, Ordering::Relaxed);
        }
        inner.map.remove(&old_page);
        self.evictions.fetch_add(1, Ordering::Relaxed);
        self.fire_evict_hook(old_page);
        Some(victim)
    }

    /// Drops `page`'s frame if resident, firing the evict hook, and
    /// returns whether a frame was dropped. This is the writable tree's
    /// commit-time invalidation: page ids freed by a shadow commit may
    /// be recycled by a later commit with different contents, so their
    /// stale frames must leave the pool first. Touches no hit/miss/
    /// eviction counter — invalidation is not a capacity eviction —
    /// but an untouched prefetched frame still counts as waste. The
    /// frame is dropped even if pinned (the caller guarantees no pins
    /// are outstanding; a stale pin on a recycled id would serve wrong
    /// data, which is strictly worse than an unbalanced unpin).
    pub fn evict_page(&self, page: u32) -> bool {
        let shard = self.shard_for(page);
        let mut inner = self.lock_shard(shard);
        let Some(idx) = inner.map.remove(&page) else {
            return false;
        };
        if inner.frames[idx].prefetched {
            self.prefetch_waste.fetch_add(1, Ordering::Relaxed);
        }
        inner.frames[idx].pins = 0;
        inner.free.push(idx);
        self.fire_evict_hook(page);
        true
    }

    /// Loads (if needed) and pins `page`: a pinned page is never
    /// evicted until every pin is released with [`BufferPool::unpin`].
    /// Pins nest.
    pub fn pin(
        &self,
        page: u32,
        load: impl FnOnce(&mut [u8]) -> Result<(), StoreError>,
    ) -> Result<Access, StoreError> {
        self.pin_with_page(page, load, |_, _| ())
            .map(|(access, _, ())| access)
    }

    /// Releases one pin on `page`. Returns `false` when the page is not
    /// resident or not pinned.
    pub fn unpin(&self, page: u32) -> bool {
        let mut inner = self.lock_shard(self.shard_for(page));
        match inner.map.get(&page).copied() {
            Some(idx) if inner.frames[idx].pins > 0 => {
                inner.frames[idx].pins -= 1;
                true
            }
            _ => false,
        }
    }

    /// Drops every resident page (pins included), returning the pool to
    /// a cold state and firing the evict hook for each dropped page.
    /// Untouched prefetched frames count as waste. Counters are
    /// otherwise unaffected; pair with [`BufferPool::reset_stats`] for a
    /// fully fresh measurement.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            let mut inner = self.lock_shard(shard);
            let dropped: Vec<(u32, bool)> = inner
                .map
                .iter()
                .map(|(&page, &idx)| (page, inner.frames[idx].prefetched))
                .collect();
            inner.map.clear();
            inner.free.clear();
            inner.frames.clear();
            inner.tick = 0;
            for (page, was_prefetched) in dropped {
                if was_prefetched {
                    self.prefetch_waste.fetch_add(1, Ordering::Relaxed);
                }
                self.fire_evict_hook(page);
            }
        }
    }

    /// Zeroes the hit/miss/eviction/prefetch counters.
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.prefetched.store(0, Ordering::Relaxed);
        self.prefetch_hits.store(0, Ordering::Relaxed);
        self.prefetch_waste.store(0, Ordering::Relaxed);
    }

    /// Current counters and occupancy (aggregated over every shard).
    pub fn stats(&self) -> PoolStats {
        let (mut resident, mut pinned) = (0usize, 0usize);
        for shard in self.shards.iter() {
            let inner = self.lock_shard(shard);
            resident += inner.map.len();
            pinned += inner
                .map
                .values()
                .filter(|&&idx| inner.frames[idx].pins > 0)
                .count();
        }
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            capacity: self.capacity,
            resident,
            pinned,
            prefetched: self.prefetched.load(Ordering::Relaxed),
            prefetch_hits: self.prefetch_hits.load(Ordering::Relaxed),
            prefetch_waste: self.prefetch_waste.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_capacity_exact_and_monotone() {
        assert_eq!(split_capacity(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(split_capacity(4, 4), vec![1, 1, 1, 1]);
        // Never more parts than frames.
        assert_eq!(split_capacity(3, 8), vec![1, 1, 1]);
        assert_eq!(split_capacity(7, 1), vec![7]);
        // Shares sum to the total and are monotone in it.
        for parts in 1..9 {
            let mut prev = vec![0usize; parts];
            for cap in 1..64 {
                let shares = split_capacity(cap, parts);
                assert_eq!(shares.iter().sum::<usize>(), cap);
                for (i, &s) in shares.iter().enumerate() {
                    assert!(s >= prev.get(i).copied().unwrap_or(0), "share shrank");
                }
                prev = shares;
            }
        }
    }

    /// A loader that stamps the page id into the buffer and counts calls.
    fn stamping_loader(count: &std::cell::Cell<u32>, page: u32) -> impl FnOnce(&mut [u8]) -> Result<(), StoreError> + '_ {
        move |buf: &mut [u8]| {
            count.set(count.get() + 1);
            buf[0..4].copy_from_slice(&page.to_le_bytes());
            Ok(())
        }
    }

    fn touch(pool: &BufferPool, page: u32) -> Access {
        pool.access(page, |buf| {
            buf[0..4].copy_from_slice(&page.to_le_bytes());
            Ok(())
        })
        .unwrap()
    }

    fn stamped(page: u32) -> Vec<u8> {
        let mut bytes = vec![0u8; PAGE_SIZE];
        bytes[0..4].copy_from_slice(&page.to_le_bytes());
        bytes
    }

    #[test]
    fn hits_after_first_miss() {
        let pool = BufferPool::new(4);
        assert_eq!(touch(&pool, 7), Access::Miss);
        assert_eq!(touch(&pool, 7), Access::Hit);
        assert_eq!(touch(&pool, 7), Access::Hit);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.resident), (2, 1, 0, 1));
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn reads_see_loaded_bytes() {
        let pool = BufferPool::new(2);
        let loads = std::cell::Cell::new(0u32);
        let (a, first) = pool
            .with_page(9, stamping_loader(&loads, 9), |b| {
                u32::from_le_bytes(b[0..4].try_into().unwrap())
            })
            .unwrap();
        assert_eq!((a, first, loads.get()), (Access::Miss, 9, 1));
        let (a, again) = pool
            .with_page(9, stamping_loader(&loads, 9), |b| {
                u32::from_le_bytes(b[0..4].try_into().unwrap())
            })
            .unwrap();
        assert_eq!((a, again, loads.get()), (Access::Hit, 9, 1), "hit must not reload");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let pool = BufferPool::new(2);
        touch(&pool, 1); // miss
        touch(&pool, 2); // miss
        touch(&pool, 1); // hit — makes 2 the LRU
        touch(&pool, 3); // miss, evicts 2
        assert_eq!(touch(&pool, 1), Access::Hit, "1 was recently used");
        assert_eq!(touch(&pool, 2), Access::Miss, "2 was the LRU victim");
        assert_eq!(pool.stats().evictions, 2); // 3 evicted 2, then 2 evicted 3
    }

    #[test]
    fn unbounded_never_evicts() {
        let pool = BufferPool::unbounded();
        for p in 0..500u32 {
            assert_eq!(touch(&pool, p), Access::Miss);
        }
        for p in 0..500u32 {
            assert_eq!(touch(&pool, p), Access::Hit);
        }
        let s = pool.stats();
        assert_eq!((s.misses, s.hits, s.evictions, s.resident), (500, 500, 0, 500));
    }

    #[test]
    fn lru_inclusion_property_on_random_trace() {
        // LRU is a stack algorithm: hits must be non-decreasing in
        // capacity over the same reference string.
        let mut x = 0x2545_F491u64;
        let trace: Vec<u32> = (0..4000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                // Skewed working set over 64 pages.
                ((x % 64) * (x >> 32 & 1) + x % 24) as u32
            })
            .collect();
        let mut last_hits = 0u64;
        for cap in [1usize, 2, 4, 8, 16, 32, 64] {
            let pool = BufferPool::new(cap);
            for &p in &trace {
                touch(&pool, p);
            }
            let hits = pool.stats().hits;
            assert!(
                hits >= last_hits,
                "cap {cap}: hits {hits} dropped below {last_hits}"
            );
            last_hits = hits;
        }
    }

    #[test]
    fn sharded_inclusion_property_on_random_trace() {
        // With a fixed shard count, the page→shard map is capacity
        // independent and every per-shard capacity grows with the
        // total, so aggregate hits stay monotone in capacity.
        let mut x = 0x9E37_79B9u64;
        let trace: Vec<u32> = (0..4000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                ((x % 64) * (x >> 32 & 1) + x % 24) as u32
            })
            .collect();
        let mut last_hits = 0u64;
        for cap in [4usize, 8, 16, 32, 64] {
            let pool = BufferPool::with_shards(cap, 4);
            assert_eq!(pool.shards(), 4);
            for &p in &trace {
                touch(&pool, p);
            }
            let hits = pool.stats().hits;
            assert!(
                hits >= last_hits,
                "cap {cap} x4 shards: hits {hits} dropped below {last_hits}"
            );
            last_hits = hits;
        }
    }

    #[test]
    fn sharded_pool_aggregates_match_single_shard_when_unbounded() {
        // With no eviction, hit/miss totals are layout-independent:
        // every page misses once and hits thereafter, whatever shard
        // it hashed to.
        for shards in [1usize, 2, 4, 8] {
            let pool = BufferPool::with_shards(usize::MAX, shards);
            for p in 0..300u32 {
                assert_eq!(touch(&pool, p), Access::Miss, "{shards} shards");
            }
            for p in 0..300u32 {
                assert_eq!(touch(&pool, p), Access::Hit, "{shards} shards");
            }
            let s = pool.stats();
            assert_eq!((s.misses, s.hits, s.evictions, s.resident), (300, 300, 0, 300));
        }
    }

    #[test]
    fn shard_count_is_clamped_to_capacity() {
        let pool = BufferPool::with_shards(3, 16);
        assert_eq!(pool.shards(), 3);
        let pool = BufferPool::with_shards(5, 0);
        assert_eq!(pool.shards(), 1);
    }

    #[test]
    fn prefetch_admission_hit_and_waste_accounting() {
        let pool = BufferPool::new(2);
        assert!(pool.admit_prefetched(5, &stamped(5)));
        assert!(pool.contains(5));
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.prefetched), (0, 0, 1), "admission is not a demand access");

        // First demand access: a prefetch hit (counted as a hit), and
        // the bytes are the admitted ones — no loader call.
        let (a, byte) = pool
            .with_page(5, |_| panic!("prefetched page must not reload"), |b| b[0])
            .unwrap();
        assert_eq!((a, byte), (Access::PrefetchHit, 5));
        // Second access is an ordinary hit: the flag was consumed.
        assert_eq!(touch(&pool, 5), Access::Hit);
        let s = pool.stats();
        assert_eq!((s.hits, s.prefetch_hits, s.prefetch_waste), (2, 1, 0));

        // An admitted page that is evicted before any demand access is
        // waste. Page 5 was just used, so 6 is the LRU victim.
        assert!(pool.admit_prefetched(6, &stamped(6)));
        touch(&pool, 5);
        touch(&pool, 7); // evicts 6, untouched
        let s = pool.stats();
        assert_eq!((s.prefetched, s.prefetch_hits, s.prefetch_waste), (2, 1, 1));

        // Re-admitting a resident page is refused.
        assert!(!pool.admit_prefetched(5, &stamped(5)));
        assert_eq!(pool.stats().prefetched, 2);
    }

    #[test]
    fn prefetch_admission_never_displaces_pinned_frames() {
        let pool = BufferPool::new(1);
        pool.pin(1, |b| {
            b[0] = 1;
            Ok(())
        })
        .unwrap();
        assert!(!pool.admit_prefetched(2, &stamped(2)), "all frames pinned");
        assert!(!pool.contains(2));
        assert_eq!(pool.stats().prefetched, 0);
        assert_eq!(pool.stats().pinned, 1);
        assert!(pool.unpin(1));
        assert_eq!(pool.stats().pinned, 0);
    }

    #[test]
    fn clear_counts_untouched_prefetched_frames_as_waste() {
        let pool = BufferPool::new(4);
        assert!(pool.admit_prefetched(1, &stamped(1)));
        assert!(pool.admit_prefetched(2, &stamped(2)));
        touch(&pool, 1); // consumes 1's prefetch flag
        pool.clear();
        let s = pool.stats();
        assert_eq!((s.prefetched, s.prefetch_hits, s.prefetch_waste), (2, 1, 1));
        assert_eq!(s.resident, 0);
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        let pool = BufferPool::new(2);
        pool.pin(1, |b| {
            b[0] = 11;
            Ok(())
        })
        .unwrap();
        for p in 2..10u32 {
            touch(&pool, p); // churns the one unpinned frame
        }
        let (access, byte) = pool
            .with_page(1, |_| panic!("pinned page must not reload"), |b| b[0])
            .unwrap();
        assert_eq!((access, byte), (Access::Hit, 11));
        assert!(pool.unpin(1));
        assert!(!pool.unpin(1), "second unpin has nothing to release");
    }

    #[test]
    fn all_pinned_pool_still_serves_misses() {
        let pool = BufferPool::new(1);
        pool.pin(1, |b| {
            b[0] = 1;
            Ok(())
        })
        .unwrap();
        // Page 2 cannot be cached, but the access must still succeed.
        assert_eq!(touch(&pool, 2), Access::Miss);
        assert_eq!(touch(&pool, 2), Access::Miss, "uncacheable: misses again");
        assert_eq!(pool.stats().resident, 1);
        assert_eq!(pool.stats().evictions, 0);
    }

    #[test]
    fn pin_with_page_reports_scratch_fallback() {
        let pool = BufferPool::new(1);
        let (a, cached, ()) = pool
            .pin_with_page(1, |b| { b[0] = 1; Ok(()) }, |_, _| ())
            .unwrap();
        assert_eq!((a, cached), (Access::Miss, true));
        // Frame 1 is pinned: page 2 lands in scratch, uncached, unpinned.
        let (a, cached, byte) = pool
            .pin_with_page(2, |b| { b[0] = 22; Ok(()) }, |b, cached| {
                assert!(!cached);
                b[0]
            })
            .unwrap();
        assert_eq!((a, cached, byte), (Access::Miss, false, 22));
        assert!(!pool.unpin(2), "scratch reads take no pin");
        assert!(pool.unpin(1));
    }

    #[test]
    fn failed_load_caches_nothing() {
        let pool = BufferPool::new(2);
        let r = pool.access(5, |_| Err(StoreError::PageChecksum { page: 5 }));
        assert!(matches!(r, Err(StoreError::PageChecksum { page: 5 })));
        assert_eq!(pool.stats().resident, 0);
        // The page is still loadable afterwards.
        assert_eq!(touch(&pool, 5), Access::Miss);
        assert_eq!(touch(&pool, 5), Access::Hit);
    }

    #[test]
    fn clear_and_reset_stats() {
        let pool = BufferPool::new(4);
        touch(&pool, 1);
        touch(&pool, 1);
        pool.clear();
        assert_eq!(pool.stats().resident, 0);
        assert_eq!(touch(&pool, 1), Access::Miss, "cold after clear");
        pool.reset_stats();
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (0, 0, 0));
        assert_eq!((s.prefetched, s.prefetch_hits, s.prefetch_waste), (0, 0, 0));
    }

    #[test]
    fn evict_hook_sees_every_departure() {
        use std::sync::Arc;
        let evicted = Arc::new(Mutex::new(Vec::new()));
        let pool = BufferPool::new(2);
        let sink = evicted.clone();
        pool.set_evict_hook(Box::new(move |page| {
            sink.lock().unwrap().push(page);
        }));
        touch(&pool, 1);
        touch(&pool, 2);
        touch(&pool, 3); // evicts 1 (LRU)
        assert_eq!(*evicted.lock().unwrap(), vec![1]);
        pool.clear(); // drops 2 and 3, in some order
        let mut rest = evicted.lock().unwrap().clone();
        rest.sort_unstable();
        assert_eq!(rest, vec![1, 2, 3]);
    }

    #[test]
    fn evict_hook_sees_prefetched_departures_too() {
        use std::sync::Arc;
        let evicted = Arc::new(Mutex::new(Vec::new()));
        let pool = BufferPool::new(1);
        let sink = evicted.clone();
        pool.set_evict_hook(Box::new(move |page| {
            sink.lock().unwrap().push(page);
        }));
        assert!(pool.admit_prefetched(4, &stamped(4)));
        touch(&pool, 9); // evicts the prefetched frame
        assert_eq!(*evicted.lock().unwrap(), vec![4]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_rejected() {
        BufferPool::new(0);
    }

    #[test]
    fn panicking_loader_does_not_poison_the_pool() {
        use std::sync::Arc;
        let pool = Arc::new(BufferPool::new(2));
        touch(&pool, 1);
        // A query thread panics *inside* the pool's critical section.
        let p2 = pool.clone();
        let crashed = std::thread::spawn(move || {
            p2.access(9, |_| panic!("simulated decode bug")).ok();
        })
        .join();
        assert!(crashed.is_err(), "the panic must reach the thread join");
        // Every later operation — from this and other threads — still
        // works: the poisoned lock is recovered, not propagated.
        assert_eq!(touch(&pool, 1), Access::Hit, "old page still resident");
        assert_eq!(touch(&pool, 9), Access::Miss, "crashed page loadable");
        assert_eq!(touch(&pool, 9), Access::Hit);
        let p3 = pool.clone();
        std::thread::spawn(move || {
            assert_eq!(touch(&p3, 1), Access::Hit);
        })
        .join()
        .unwrap();
        assert!(pool.stats().resident <= 2);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        use std::sync::Arc;
        let pool = Arc::new(BufferPool::new(8));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let pool = pool.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000u32 {
                    let page = (i * (t + 1)) % 16;
                    pool.access(page, |buf| {
                        buf[0..4].copy_from_slice(&page.to_le_bytes());
                        Ok(())
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 8_000);
        assert!(s.resident <= 8);
    }

    #[test]
    fn concurrent_sharded_access_is_consistent() {
        use std::sync::Arc;
        let pool = Arc::new(BufferPool::with_shards(8, 4));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let pool = pool.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000u32 {
                    let page = (i * (t + 1)) % 16;
                    if i % 37 == 0 {
                        pool.admit_prefetched(page, &stamped(page));
                        continue;
                    }
                    pool.access(page, |buf| {
                        buf[0..4].copy_from_slice(&page.to_le_bytes());
                        Ok(())
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = pool.stats();
        // 4 threads × 2000 iterations, of which ⌈2000/37⌉ = 55 are
        // prefetch admissions, not demand accesses.
        assert_eq!(s.hits + s.misses, 4 * (2_000 - 55));
        assert!(s.resident <= 8);
        assert!(s.prefetch_hits + s.prefetch_waste <= s.prefetched);
    }
}
