//! A fixed-capacity buffer pool with LRU eviction, pinning, and
//! hit/miss/eviction accounting.
//!
//! The pool is the layer that turns the paper's I/O metric physical:
//! query code asks the pool for a page; a resident page is a **buffer
//! hit** (no I/O), a non-resident one is a **miss** that invokes the
//! caller's loader (a real [`PageStore`](crate::PageStore) read) and may
//! **evict** the least-recently-used unpinned frame.
//!
//! Eviction is *exact* LRU — not the CLOCK approximation — because LRU
//! is a stack algorithm: for a fixed reference string its hit count is
//! non-decreasing in capacity (the inclusion property). The buffer-sweep
//! experiment relies on that monotonicity; CLOCK does not guarantee it.
//! (Pinning can perturb the victim choice, but pinned pages are the
//! most recently used ones on a traversal path, which plain LRU would
//! not victimize either except at degenerate capacities.) The LRU
//! victim scan is `O(capacity)` per miss, which is noise next to the
//! page read the miss already pays for.
//!
//! All methods take `&self`: the frame table lives behind a mutex (loads
//! included — misses are serialized, as the metadata of a real pool's
//! latching would be) and the counters are relaxed atomics, so one pool
//! can serve every query thread of a
//! [`QueryEngine`]-style batch runner.
//!
//! # Panic safety
//!
//! A caller closure (`load`/`read`) that panics unwinds while the frame
//! mutex is held and poisons it. The frame table has no invariant a
//! mid-panic unwind can break (the worst case is one unmapped frame
//! slot, which a later miss re-victimizes), so every lock site recovers
//! with [`PoisonError::into_inner`] instead of propagating the panic:
//! one crashing query thread never bricks the pool for the others.
//!
//! # Eviction hook
//!
//! [`BufferPool::set_evict_hook`] registers a callback fired — under the
//! pool lock — whenever a page leaves the pool (LRU eviction or
//! [`BufferPool::clear`]). Clients caching state keyed by page id (the
//! R\*-tree's decoded-node cache) use it to drop their entry in the same
//! critical section, so cached state never outlives page residency.

use crate::error::StoreError;
use crate::PAGE_SIZE;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// How the pool satisfied a page request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Access {
    /// The page was resident: no physical I/O happened.
    Hit,
    /// The page was loaded by the supplied loader: one physical read.
    Miss,
}

/// A snapshot of the pool's counters and occupancy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests satisfied without I/O.
    pub hits: u64,
    /// Requests that invoked the loader (physical reads).
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Maximum resident pages (`usize::MAX` for an unbounded pool).
    pub capacity: usize,
    /// Pages currently resident.
    pub resident: usize,
}

impl PoolStats {
    /// `hits / (hits + misses)`, or 0 when nothing was requested.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Frame {
    page: u32,
    pins: u32,
    last_used: u64,
    data: Box<[u8]>,
}

#[derive(Default)]
struct Inner {
    frames: Vec<Frame>,
    /// page id → index into `frames`.
    map: HashMap<u32, usize>,
    /// Frame slots holding no page (after a failed load or `clear`).
    free: Vec<usize>,
    /// LRU clock: monotonically increasing use stamp.
    tick: u64,
}

/// Callback invoked (under the pool lock) when a page leaves the pool.
pub type EvictHook = Box<dyn Fn(u32) + Send + Sync>;

/// A fixed-capacity page buffer. See the module docs.
pub struct BufferPool {
    capacity: usize,
    inner: Mutex<Inner>,
    evict_hook: OnceLock<EvictHook>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl BufferPool {
    /// A pool holding at most `capacity` pages.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero — a pool that can hold nothing
    /// cannot satisfy even a single load.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "buffer pool capacity must be at least 1");
        BufferPool {
            capacity,
            inner: Mutex::new(Inner::default()),
            evict_hook: OnceLock::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// A pool that never evicts (capacity `usize::MAX`). Every page
    /// misses exactly once and hits forever after.
    pub fn unbounded() -> Self {
        BufferPool::new(usize::MAX)
    }

    /// The configured capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Registers the eviction callback (at most once, before queries
    /// start). Fired under the pool lock for every page dropped by LRU
    /// eviction or [`BufferPool::clear`]; the hook must not call back
    /// into the pool.
    ///
    /// # Panics
    ///
    /// Panics when a hook was already registered.
    pub fn set_evict_hook(&self, hook: EvictHook) {
        if self.evict_hook.set(hook).is_err() {
            panic!("buffer pool evict hook already set");
        }
    }

    /// Locks the frame table, recovering from poisoning: a panic in a
    /// caller closure cannot corrupt the table (see the module docs), so
    /// the lock stays usable for every other thread.
    fn lock_inner(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[inline]
    fn fire_evict_hook(&self, page: u32) {
        if let Some(hook) = self.evict_hook.get() {
            hook(page);
        }
    }

    /// Requests `page`, invoking `load` to fill the frame on a miss.
    /// Returns whether the request was a [`Access::Hit`] or
    /// [`Access::Miss`]; a failed load caches nothing and surfaces the
    /// loader's error.
    pub fn access(
        &self,
        page: u32,
        load: impl FnOnce(&mut [u8]) -> Result<(), StoreError>,
    ) -> Result<Access, StoreError> {
        self.with_page(page, load, |_| ()).map(|(access, ())| access)
    }

    /// As [`BufferPool::access`], additionally running `read` over the
    /// resident page bytes (under the pool lock) and returning its value.
    pub fn with_page<R>(
        &self,
        page: u32,
        load: impl FnOnce(&mut [u8]) -> Result<(), StoreError>,
        read: impl FnOnce(&[u8]) -> R,
    ) -> Result<(Access, R), StoreError> {
        self.request(page, load, |bytes, _cached| read(bytes), false)
            .map(|(access, _cached, r)| (access, r))
    }

    /// As [`BufferPool::with_page`], but the page is additionally
    /// **pinned** when it is (or becomes) resident — release with
    /// [`BufferPool::unpin`]. Pins nest. `read` runs under the pool lock
    /// and receives `cached = false` only on the all-frames-pinned
    /// fallback, where the bytes live in a throwaway scratch buffer and
    /// no pin is taken (there is nothing resident to pin).
    ///
    /// This is the one-critical-section primitive behind demand paging:
    /// hit/miss classification, loading, pinning and the caller's
    /// decode-and-cache step all happen atomically with respect to
    /// eviction, so a decoded node can never outlive its page's
    /// residency unnoticed.
    pub fn pin_with_page<R>(
        &self,
        page: u32,
        load: impl FnOnce(&mut [u8]) -> Result<(), StoreError>,
        read: impl FnOnce(&[u8], bool) -> R,
    ) -> Result<(Access, bool, R), StoreError> {
        self.request(page, load, read, true)
    }

    /// Shared hit/miss/scratch machinery for `with_page` and
    /// `pin_with_page`.
    fn request<R>(
        &self,
        page: u32,
        load: impl FnOnce(&mut [u8]) -> Result<(), StoreError>,
        read: impl FnOnce(&[u8], bool) -> R,
        pin: bool,
    ) -> Result<(Access, bool, R), StoreError> {
        let mut inner = self.lock_inner();
        inner.tick += 1;
        let tick = inner.tick;

        if let Some(&idx) = inner.map.get(&page) {
            let frame = &mut inner.frames[idx];
            frame.last_used = tick;
            if pin {
                frame.pins += 1;
            }
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Access::Hit, true, read(&frame.data, true)));
        }

        self.misses.fetch_add(1, Ordering::Relaxed);
        match self.claim_frame(&mut inner) {
            Some(idx) => {
                let frame = &mut inner.frames[idx];
                if let Err(e) = load(&mut frame.data) {
                    // The frame holds partial bytes: leave it unmapped.
                    inner.free.push(idx);
                    return Err(e);
                }
                let frame = &mut inner.frames[idx];
                frame.page = page;
                frame.pins = u32::from(pin);
                frame.last_used = tick;
                inner.map.insert(page, idx);
                let r = read(&inner.frames[idx].data, true);
                Ok((Access::Miss, true, r))
            }
            None => {
                // Every frame is pinned: perform the read without
                // caching it (still one physical read, no eviction).
                let mut scratch = vec![0u8; PAGE_SIZE];
                load(&mut scratch)?;
                Ok((Access::Miss, false, read(&scratch, false)))
            }
        }
    }

    /// Finds a frame for a new page: a free slot, a new allocation under
    /// capacity, or the LRU unpinned victim (firing the evict hook).
    /// `None` when every frame is pinned.
    fn claim_frame(&self, inner: &mut Inner) -> Option<usize> {
        if let Some(idx) = inner.free.pop() {
            return Some(idx);
        }
        if inner.frames.len() < self.capacity {
            inner.frames.push(Frame {
                page: u32::MAX,
                pins: 0,
                last_used: 0,
                data: vec![0u8; PAGE_SIZE].into_boxed_slice(),
            });
            return Some(inner.frames.len() - 1);
        }
        let victim = inner
            .frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.pins == 0)
            .min_by_key(|(_, f)| f.last_used)
            .map(|(i, _)| i)?;
        let old_page = inner.frames[victim].page;
        inner.map.remove(&old_page);
        self.evictions.fetch_add(1, Ordering::Relaxed);
        self.fire_evict_hook(old_page);
        Some(victim)
    }

    /// Loads (if needed) and pins `page`: a pinned page is never
    /// evicted until every pin is released with [`BufferPool::unpin`].
    /// Pins nest.
    pub fn pin(
        &self,
        page: u32,
        load: impl FnOnce(&mut [u8]) -> Result<(), StoreError>,
    ) -> Result<Access, StoreError> {
        self.pin_with_page(page, load, |_, _| ())
            .map(|(access, _, ())| access)
    }

    /// Releases one pin on `page`. Returns `false` when the page is not
    /// resident or not pinned.
    pub fn unpin(&self, page: u32) -> bool {
        let mut inner = self.lock_inner();
        match inner.map.get(&page).copied() {
            Some(idx) if inner.frames[idx].pins > 0 => {
                inner.frames[idx].pins -= 1;
                true
            }
            _ => false,
        }
    }

    /// Drops every resident page (pins included), returning the pool to
    /// a cold state and firing the evict hook for each dropped page.
    /// Counters are unaffected; pair with [`BufferPool::reset_stats`]
    /// for a fully fresh measurement.
    pub fn clear(&self) {
        let mut inner = self.lock_inner();
        let dropped: Vec<u32> = inner.map.keys().copied().collect();
        inner.map.clear();
        inner.free.clear();
        inner.frames.clear();
        inner.tick = 0;
        for page in dropped {
            self.fire_evict_hook(page);
        }
    }

    /// Zeroes the hit/miss/eviction counters.
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> PoolStats {
        let inner = self.lock_inner();
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            capacity: self.capacity,
            resident: inner.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A loader that stamps the page id into the buffer and counts calls.
    fn stamping_loader(count: &std::cell::Cell<u32>, page: u32) -> impl FnOnce(&mut [u8]) -> Result<(), StoreError> + '_ {
        move |buf: &mut [u8]| {
            count.set(count.get() + 1);
            buf[0..4].copy_from_slice(&page.to_le_bytes());
            Ok(())
        }
    }

    fn touch(pool: &BufferPool, page: u32) -> Access {
        pool.access(page, |buf| {
            buf[0..4].copy_from_slice(&page.to_le_bytes());
            Ok(())
        })
        .unwrap()
    }

    #[test]
    fn hits_after_first_miss() {
        let pool = BufferPool::new(4);
        assert_eq!(touch(&pool, 7), Access::Miss);
        assert_eq!(touch(&pool, 7), Access::Hit);
        assert_eq!(touch(&pool, 7), Access::Hit);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.resident), (2, 1, 0, 1));
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn reads_see_loaded_bytes() {
        let pool = BufferPool::new(2);
        let loads = std::cell::Cell::new(0u32);
        let (a, first) = pool
            .with_page(9, stamping_loader(&loads, 9), |b| {
                u32::from_le_bytes(b[0..4].try_into().unwrap())
            })
            .unwrap();
        assert_eq!((a, first, loads.get()), (Access::Miss, 9, 1));
        let (a, again) = pool
            .with_page(9, stamping_loader(&loads, 9), |b| {
                u32::from_le_bytes(b[0..4].try_into().unwrap())
            })
            .unwrap();
        assert_eq!((a, again, loads.get()), (Access::Hit, 9, 1), "hit must not reload");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let pool = BufferPool::new(2);
        touch(&pool, 1); // miss
        touch(&pool, 2); // miss
        touch(&pool, 1); // hit — makes 2 the LRU
        touch(&pool, 3); // miss, evicts 2
        assert_eq!(touch(&pool, 1), Access::Hit, "1 was recently used");
        assert_eq!(touch(&pool, 2), Access::Miss, "2 was the LRU victim");
        assert_eq!(pool.stats().evictions, 2); // 3 evicted 2, then 2 evicted 3
    }

    #[test]
    fn unbounded_never_evicts() {
        let pool = BufferPool::unbounded();
        for p in 0..500u32 {
            assert_eq!(touch(&pool, p), Access::Miss);
        }
        for p in 0..500u32 {
            assert_eq!(touch(&pool, p), Access::Hit);
        }
        let s = pool.stats();
        assert_eq!((s.misses, s.hits, s.evictions, s.resident), (500, 500, 0, 500));
    }

    #[test]
    fn lru_inclusion_property_on_random_trace() {
        // LRU is a stack algorithm: hits must be non-decreasing in
        // capacity over the same reference string.
        let mut x = 0x2545_F491u64;
        let trace: Vec<u32> = (0..4000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                // Skewed working set over 64 pages.
                ((x % 64) * (x >> 32 & 1) + x % 24) as u32
            })
            .collect();
        let mut last_hits = 0u64;
        for cap in [1usize, 2, 4, 8, 16, 32, 64] {
            let pool = BufferPool::new(cap);
            for &p in &trace {
                touch(&pool, p);
            }
            let hits = pool.stats().hits;
            assert!(
                hits >= last_hits,
                "cap {cap}: hits {hits} dropped below {last_hits}"
            );
            last_hits = hits;
        }
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        let pool = BufferPool::new(2);
        pool.pin(1, |b| {
            b[0] = 11;
            Ok(())
        })
        .unwrap();
        for p in 2..10u32 {
            touch(&pool, p); // churns the one unpinned frame
        }
        let (access, byte) = pool
            .with_page(1, |_| panic!("pinned page must not reload"), |b| b[0])
            .unwrap();
        assert_eq!((access, byte), (Access::Hit, 11));
        assert!(pool.unpin(1));
        assert!(!pool.unpin(1), "second unpin has nothing to release");
    }

    #[test]
    fn all_pinned_pool_still_serves_misses() {
        let pool = BufferPool::new(1);
        pool.pin(1, |b| {
            b[0] = 1;
            Ok(())
        })
        .unwrap();
        // Page 2 cannot be cached, but the access must still succeed.
        assert_eq!(touch(&pool, 2), Access::Miss);
        assert_eq!(touch(&pool, 2), Access::Miss, "uncacheable: misses again");
        assert_eq!(pool.stats().resident, 1);
        assert_eq!(pool.stats().evictions, 0);
    }

    #[test]
    fn pin_with_page_reports_scratch_fallback() {
        let pool = BufferPool::new(1);
        let (a, cached, ()) = pool
            .pin_with_page(1, |b| { b[0] = 1; Ok(()) }, |_, _| ())
            .unwrap();
        assert_eq!((a, cached), (Access::Miss, true));
        // Frame 1 is pinned: page 2 lands in scratch, uncached, unpinned.
        let (a, cached, byte) = pool
            .pin_with_page(2, |b| { b[0] = 22; Ok(()) }, |b, cached| {
                assert!(!cached);
                b[0]
            })
            .unwrap();
        assert_eq!((a, cached, byte), (Access::Miss, false, 22));
        assert!(!pool.unpin(2), "scratch reads take no pin");
        assert!(pool.unpin(1));
    }

    #[test]
    fn failed_load_caches_nothing() {
        let pool = BufferPool::new(2);
        let r = pool.access(5, |_| Err(StoreError::PageChecksum { page: 5 }));
        assert!(matches!(r, Err(StoreError::PageChecksum { page: 5 })));
        assert_eq!(pool.stats().resident, 0);
        // The page is still loadable afterwards.
        assert_eq!(touch(&pool, 5), Access::Miss);
        assert_eq!(touch(&pool, 5), Access::Hit);
    }

    #[test]
    fn clear_and_reset_stats() {
        let pool = BufferPool::new(4);
        touch(&pool, 1);
        touch(&pool, 1);
        pool.clear();
        assert_eq!(pool.stats().resident, 0);
        assert_eq!(touch(&pool, 1), Access::Miss, "cold after clear");
        pool.reset_stats();
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (0, 0, 0));
    }

    #[test]
    fn evict_hook_sees_every_departure() {
        use std::sync::Arc;
        let evicted = Arc::new(Mutex::new(Vec::new()));
        let pool = BufferPool::new(2);
        let sink = evicted.clone();
        pool.set_evict_hook(Box::new(move |page| {
            sink.lock().unwrap().push(page);
        }));
        touch(&pool, 1);
        touch(&pool, 2);
        touch(&pool, 3); // evicts 1 (LRU)
        assert_eq!(*evicted.lock().unwrap(), vec![1]);
        pool.clear(); // drops 2 and 3, in some order
        let mut rest = evicted.lock().unwrap().clone();
        rest.sort_unstable();
        assert_eq!(rest, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_rejected() {
        BufferPool::new(0);
    }

    #[test]
    fn panicking_loader_does_not_poison_the_pool() {
        use std::sync::Arc;
        let pool = Arc::new(BufferPool::new(2));
        touch(&pool, 1);
        // A query thread panics *inside* the pool's critical section.
        let p2 = pool.clone();
        let crashed = std::thread::spawn(move || {
            p2.access(9, |_| panic!("simulated decode bug")).ok();
        })
        .join();
        assert!(crashed.is_err(), "the panic must reach the thread join");
        // Every later operation — from this and other threads — still
        // works: the poisoned lock is recovered, not propagated.
        assert_eq!(touch(&pool, 1), Access::Hit, "old page still resident");
        assert_eq!(touch(&pool, 9), Access::Miss, "crashed page loadable");
        assert_eq!(touch(&pool, 9), Access::Hit);
        let p3 = pool.clone();
        std::thread::spawn(move || {
            assert_eq!(touch(&p3, 1), Access::Hit);
        })
        .join()
        .unwrap();
        assert!(pool.stats().resident <= 2);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        use std::sync::Arc;
        let pool = Arc::new(BufferPool::new(8));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let pool = pool.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000u32 {
                    let page = (i * (t + 1)) % 16;
                    pool.access(page, |buf| {
                        buf[0..4].copy_from_slice(&page.to_le_bytes());
                        Ok(())
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 8_000);
        assert!(s.resident <= 8);
    }
}
