//! Bounded retry with deterministic backoff for physical page reads.
//!
//! Storage fails in two shapes: *transient* (a busy device, an
//! interrupted syscall, a torn read that the next attempt completes) and
//! *permanent* (a bad sector, rotted bytes). A [`RetryPolicy`] bounds
//! how much patience a reader spends telling the two apart: up to
//! [`RetryPolicy::max_attempts`] tries, separated by exponentially
//! growing, capped backoff with **deterministic jitter** — the delay for
//! a given (retry, salt) pair is a pure function, so fault-injection
//! runs replay identically and tests never flake on timing randomness.

use std::time::Duration;

/// Retry budget and backoff shape for a fallible physical read.
///
/// Consumed by the tree's demand-read seam (`TreeStorage` in
/// `nwc-rtree`): a read is attempted up to `max_attempts` times, waiting
/// [`RetryPolicy::backoff`] between consecutive attempts; when the
/// budget is exhausted the last error propagates as a typed error (and
/// the page is quarantined by the caller) — never a panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per read, **including** the first. Clamped to at
    /// least 1 when consumed (0 would mean "never even try").
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles for each further retry.
    /// `Duration::ZERO` disables sleeping entirely (used by tests).
    pub base_backoff: Duration,
    /// Upper bound on any single backoff interval.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    /// Four attempts, 100 µs first backoff, capped at 20 ms — generous
    /// toward transient blips, quick to give up on a truly dead page.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(20),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: one attempt, no backoff. The
    /// pre-fault-injection behavior, kept available for benchmarks that
    /// want raw error latency.
    pub const fn no_retries() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// Attempts budget with the "at least one" clamp applied.
    pub fn attempts(&self) -> u32 {
        self.max_attempts.max(1)
    }

    /// The backoff before retry number `retry` (0-based: `retry = 0` is
    /// the wait between the first failure and the second attempt).
    ///
    /// Exponential (`base · 2^retry`) capped at `max_backoff`, scaled by
    /// a jitter factor in `[0.5, 1.0)` derived **deterministically**
    /// from `(retry, salt)` — callers pass the page id as salt so
    /// concurrent retries of different pages decorrelate while replays
    /// stay bit-identical.
    pub fn backoff(&self, retry: u32, salt: u64) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let base = self.base_backoff.as_nanos();
        let cap = self.max_backoff.max(self.base_backoff).as_nanos();
        let exp = base.saturating_mul(1u128 << retry.min(63)).min(cap);
        // SplitMix64-style mix of (retry, salt) → jitter in [0.5, 1.0).
        let mut x = salt
            .wrapping_add(u64::from(retry).wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let frac = (x >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        let nanos = (exp as f64 * (0.5 + frac / 2.0)) as u128;
        Duration::from_nanos(u64::try_from(nanos).unwrap_or(u64::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(5),
        };
        for retry in 0..8 {
            for salt in [0u64, 7, 9_999] {
                let a = p.backoff(retry, salt);
                let b = p.backoff(retry, salt);
                assert_eq!(a, b, "same inputs, same delay");
                assert!(a <= p.max_backoff, "capped at max_backoff");
                assert!(!a.is_zero(), "nonzero base gives nonzero delay");
            }
        }
        // Different salts jitter apart (with overwhelming probability
        // for these fixed inputs — this is a deterministic assertion).
        assert_ne!(p.backoff(2, 1), p.backoff(2, 2));
    }

    #[test]
    fn backoff_grows_then_caps() {
        let p = RetryPolicy {
            max_attempts: 16,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(1),
        };
        // Jitter is in [0.5, 1.0), so a doubling always dominates it:
        // the un-jittered envelope doubles until the cap.
        let early = p.backoff(0, 42);
        let late = p.backoff(12, 42);
        assert!(late > early);
        assert!(late <= p.max_backoff);
    }

    #[test]
    fn zero_base_never_sleeps() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::from_secs(1),
        };
        assert_eq!(p.backoff(3, 77), Duration::ZERO);
        assert_eq!(RetryPolicy::no_retries().attempts(), 1);
    }

    #[test]
    fn attempts_clamps_to_one() {
        let p = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.attempts(), 1);
    }
}
