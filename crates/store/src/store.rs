//! The [`PageStore`] trait and its two backends.
//!
//! A page store is a flat array of fixed-size pages plus a small
//! metadata record ([`StoreMeta`]). [`MemStore`] keeps the pages in a
//! `Vec` (the arena behavior the reproduction started with, now behind
//! the same interface); [`FileStore`] is a real on-disk page file with a
//! magic/version header and a per-page CRC-32 checksum table, so every
//! physical read is an actual `read` syscall verified against the
//! checksum recorded at write time.
//!
//! # File layout (`FileStore`, little-endian)
//!
//! ```text
//! offset            size              field
//! 0                 4096              header page:
//!   0                 8                 magic  b"NWCPAGE\x01"
//!   8                 4                 format version (1)
//!   12                4                 page size (4096)
//!   16                4                 page count
//!   20                4                 root page id
//!   24                32                user metadata (4 × u64, opaque)
//!   56                4                 CRC-32 of the checksum table
//!   60                4                 CRC-32 of header bytes 0..60
//! 4096              ⌈count·4 / 4096⌉·4096   checksum table (u32 per page)
//! …                 count · 4096      data pages
//! ```
//!
//! Data pages start on a page-aligned offset, so the operating system's
//! own page cache and read-ahead behave as they would for any database
//! file.

use crate::checksum::crc32;
use crate::error::StoreError;
use crate::PAGE_SIZE;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const MAGIC: [u8; 8] = *b"NWCPAGE\x01";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 64;

/// Metadata describing a page store: its shape plus 32 opaque bytes for
/// the client (the R\*-tree packs its `TreeParams` and length there —
/// the store itself never interprets them).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreMeta {
    /// Size of every page, bytes. Always [`PAGE_SIZE`] in version 1.
    pub page_size: u32,
    /// Number of pages in the store.
    pub page_count: u32,
    /// The client's designated root page (must be `< page_count`).
    pub root_page: u32,
    /// Opaque client words, persisted verbatim.
    pub user: [u64; 4],
}

impl StoreMeta {
    /// Metadata for a store of `page_count` pages rooted at `root_page`.
    pub fn new(page_count: u32, root_page: u32, user: [u64; 4]) -> Self {
        StoreMeta {
            page_size: PAGE_SIZE as u32,
            page_count,
            root_page,
            user,
        }
    }

    fn validate(&self) -> Result<(), StoreError> {
        if self.page_size != PAGE_SIZE as u32 {
            return Err(StoreError::BadPageSize(self.page_size));
        }
        if self.page_count == 0 {
            return Err(StoreError::Empty);
        }
        if self.root_page >= self.page_count {
            return Err(StoreError::BadRoot {
                root: self.root_page,
                page_count: self.page_count,
            });
        }
        Ok(())
    }
}

/// A read-only array of fixed-size pages with metadata.
///
/// Implementations are `Send + Sync`: queries run from many threads at
/// once, and the buffer pool calls [`PageStore::read_page`] on misses
/// from whichever thread missed. Every successful `read_page` counts as
/// one physical read.
pub trait PageStore: Send + Sync {
    /// The store's metadata record.
    fn meta(&self) -> StoreMeta;

    /// Reads page `page` into `buf` (which must be exactly
    /// [`PAGE_SIZE`] bytes), verifying integrity where the backend can.
    fn read_page(&self, page: u32, buf: &mut [u8]) -> Result<(), StoreError>;

    /// Number of successful physical page reads since construction or
    /// the last [`PageStore::reset_counters`].
    fn physical_reads(&self) -> u64;

    /// Zeroes the physical-read counter (e.g. after a warm-up scan).
    fn reset_counters(&self);

    /// Flushes any buffered writes to durable storage. A no-op for
    /// read-only and in-memory backends.
    fn sync(&self) -> Result<(), StoreError>;
}

// ---------------------------------------------------------------------
// MemStore
// ---------------------------------------------------------------------

/// An in-memory [`PageStore`]: pages live in a `Vec`. This is the
/// pre-storage-engine behavior behind the storage interface — useful for
/// tests and for buffer-pool experiments without touching a filesystem.
pub struct MemStore {
    meta: StoreMeta,
    pages: Vec<[u8; PAGE_SIZE]>,
    reads: AtomicU64,
}

impl MemStore {
    /// Builds a store over `pages` rooted at `root_page`.
    pub fn new(
        pages: Vec<[u8; PAGE_SIZE]>,
        root_page: u32,
        user: [u64; 4],
    ) -> Result<MemStore, StoreError> {
        let meta = StoreMeta::new(
            u32::try_from(pages.len()).expect("page count overflows u32"),
            root_page,
            user,
        );
        meta.validate()?;
        Ok(MemStore {
            meta,
            pages,
            reads: AtomicU64::new(0),
        })
    }

    /// Mutable access to one page, for corruption-injection in tests.
    pub fn page_mut(&mut self, page: u32) -> &mut [u8; PAGE_SIZE] {
        &mut self.pages[page as usize]
    }
}

impl PageStore for MemStore {
    fn meta(&self) -> StoreMeta {
        self.meta
    }

    fn read_page(&self, page: u32, buf: &mut [u8]) -> Result<(), StoreError> {
        assert_eq!(buf.len(), PAGE_SIZE, "read buffer must be one page");
        let src = self
            .pages
            .get(page as usize)
            .ok_or(StoreError::PageOutOfRange {
                page,
                page_count: self.meta.page_count,
            })?;
        buf.copy_from_slice(src);
        self.reads.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn physical_reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    fn reset_counters(&self) {
        self.reads.store(0, Ordering::Relaxed);
    }

    fn sync(&self) -> Result<(), StoreError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------
// FileStore
// ---------------------------------------------------------------------

/// An on-disk [`PageStore`]: a page file with a checksummed header and a
/// CRC-32 per page (see the module docs for the layout). Open with
/// [`FileStore::open`], create with [`FileStore::create`].
pub struct FileStore {
    // The pool serializes loads anyway, so a mutex (portable) costs no
    // extra contention over platform positioned-read APIs.
    file: Mutex<File>,
    meta: StoreMeta,
    /// CRC-32 per page, loaded and verified at open.
    checksums: Vec<u32>,
    /// Byte offset of data page 0.
    data_offset: u64,
    reads: AtomicU64,
}

/// Bytes occupied by the checksum table, padded to whole pages.
fn table_bytes(page_count: u32) -> u64 {
    let raw = page_count as u64 * 4;
    raw.div_ceil(PAGE_SIZE as u64) * PAGE_SIZE as u64
}

fn encode_header(meta: &StoreMeta, table_crc: u32) -> [u8; PAGE_SIZE] {
    let mut h = [0u8; PAGE_SIZE];
    h[0..8].copy_from_slice(&MAGIC);
    h[8..12].copy_from_slice(&VERSION.to_le_bytes());
    h[12..16].copy_from_slice(&meta.page_size.to_le_bytes());
    h[16..20].copy_from_slice(&meta.page_count.to_le_bytes());
    h[20..24].copy_from_slice(&meta.root_page.to_le_bytes());
    for (i, w) in meta.user.iter().enumerate() {
        h[24 + i * 8..32 + i * 8].copy_from_slice(&w.to_le_bytes());
    }
    h[56..60].copy_from_slice(&table_crc.to_le_bytes());
    let header_crc = crc32(&h[0..60]);
    h[60..64].copy_from_slice(&header_crc.to_le_bytes());
    h
}

impl FileStore {
    /// Writes a new page file at `path` (truncating any existing file)
    /// and returns the opened store. The file is fsynced before this
    /// returns.
    pub fn create(
        path: &Path,
        root_page: u32,
        user: [u64; 4],
        pages: &[[u8; PAGE_SIZE]],
    ) -> Result<FileStore, StoreError> {
        let meta = StoreMeta::new(
            u32::try_from(pages.len()).expect("page count overflows u32"),
            root_page,
            user,
        );
        meta.validate()?;

        let checksums: Vec<u32> = pages.iter().map(|p| crc32(p)).collect();
        let mut table = vec![0u8; table_bytes(meta.page_count) as usize];
        for (i, c) in checksums.iter().enumerate() {
            table[i * 4..i * 4 + 4].copy_from_slice(&c.to_le_bytes());
        }
        let table_crc = crc32(&table);

        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(&encode_header(&meta, table_crc))?;
        file.write_all(&table)?;
        for p in pages {
            file.write_all(p)?;
        }
        file.sync_all()?;

        Ok(FileStore {
            file: Mutex::new(file),
            meta,
            checksums,
            data_offset: PAGE_SIZE as u64 + table_bytes(meta.page_count),
            reads: AtomicU64::new(0),
        })
    }

    /// Opens an existing page file, validating the magic, version, page
    /// size, header checksum, root page, file length, and checksum-table
    /// checksum. Corrupt files are rejected with a typed [`StoreError`].
    pub fn open(path: &Path) -> Result<FileStore, StoreError> {
        let mut file = File::open(path)?;
        let mut header = [0u8; HEADER_LEN];
        if file.read_exact(&mut header).is_err() {
            return Err(StoreError::BadMagic); // too short to be a page file
        }
        if header[0..8] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let stored_crc = u32::from_le_bytes(header[60..64].try_into().unwrap());
        if crc32(&header[0..60]) != stored_crc {
            return Err(StoreError::HeaderChecksum);
        }
        let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(StoreError::BadVersion(version));
        }
        let meta = StoreMeta {
            page_size: u32::from_le_bytes(header[12..16].try_into().unwrap()),
            page_count: u32::from_le_bytes(header[16..20].try_into().unwrap()),
            root_page: u32::from_le_bytes(header[20..24].try_into().unwrap()),
            user: {
                let mut user = [0u64; 4];
                for (i, w) in user.iter_mut().enumerate() {
                    *w = u64::from_le_bytes(header[24 + i * 8..32 + i * 8].try_into().unwrap());
                }
                user
            },
        };
        meta.validate()?;

        let data_offset = PAGE_SIZE as u64 + table_bytes(meta.page_count);
        let expected = data_offset + meta.page_count as u64 * PAGE_SIZE as u64;
        let actual = file.metadata()?.len();
        if actual < expected {
            return Err(StoreError::Truncated { expected, actual });
        }

        let mut table = vec![0u8; table_bytes(meta.page_count) as usize];
        file.seek(SeekFrom::Start(PAGE_SIZE as u64))?;
        file.read_exact(&mut table)?;
        let table_crc = u32::from_le_bytes(header[56..60].try_into().unwrap());
        if crc32(&table) != table_crc {
            return Err(StoreError::HeaderChecksum);
        }
        let checksums: Vec<u32> = (0..meta.page_count as usize)
            .map(|i| u32::from_le_bytes(table[i * 4..i * 4 + 4].try_into().unwrap()))
            .collect();

        Ok(FileStore {
            file: Mutex::new(file),
            meta,
            checksums,
            data_offset,
            reads: AtomicU64::new(0),
        })
    }
}

impl PageStore for FileStore {
    fn meta(&self) -> StoreMeta {
        self.meta
    }

    fn read_page(&self, page: u32, buf: &mut [u8]) -> Result<(), StoreError> {
        assert_eq!(buf.len(), PAGE_SIZE, "read buffer must be one page");
        if page >= self.meta.page_count {
            return Err(StoreError::PageOutOfRange {
                page,
                page_count: self.meta.page_count,
            });
        }
        {
            let mut file = self.file.lock().expect("file lock poisoned");
            file.seek(SeekFrom::Start(
                self.data_offset + page as u64 * PAGE_SIZE as u64,
            ))?;
            file.read_exact(buf)?;
        }
        if crc32(buf) != self.checksums[page as usize] {
            return Err(StoreError::PageChecksum { page });
        }
        self.reads.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn physical_reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    fn reset_counters(&self) {
        self.reads.store(0, Ordering::Relaxed);
    }

    fn sync(&self) -> Result<(), StoreError> {
        Ok(self.file.lock().expect("file lock poisoned").sync_all()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_pages(n: usize) -> Vec<[u8; PAGE_SIZE]> {
        (0..n)
            .map(|i| {
                let mut p = [0u8; PAGE_SIZE];
                for (j, b) in p.iter_mut().enumerate() {
                    *b = ((i * 131 + j * 7) % 251) as u8;
                }
                p
            })
            .collect()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("nwc_store_test_{}_{name}", std::process::id()))
    }

    #[test]
    fn memstore_roundtrip_and_counting() {
        let store = MemStore::new(sample_pages(5), 2, [9, 8, 7, 6]).unwrap();
        assert_eq!(store.meta().page_count, 5);
        assert_eq!(store.meta().root_page, 2);
        assert_eq!(store.meta().user, [9, 8, 7, 6]);
        let mut buf = [0u8; PAGE_SIZE];
        store.read_page(4, &mut buf).unwrap();
        assert_eq!(buf[..], sample_pages(5)[4][..]);
        assert_eq!(store.physical_reads(), 1);
        store.reset_counters();
        assert_eq!(store.physical_reads(), 0);
        assert!(matches!(
            store.read_page(5, &mut buf),
            Err(StoreError::PageOutOfRange { page: 5, .. })
        ));
    }

    #[test]
    fn memstore_rejects_bad_root_and_empty() {
        assert!(matches!(
            MemStore::new(sample_pages(3), 3, [0; 4]),
            Err(StoreError::BadRoot { .. })
        ));
        assert!(matches!(
            MemStore::new(Vec::new(), 0, [0; 4]),
            Err(StoreError::Empty)
        ));
    }

    #[test]
    fn filestore_create_open_read() {
        let path = tmp("roundtrip");
        let pages = sample_pages(7);
        {
            let store = FileStore::create(&path, 3, [1, 2, 3, 4], &pages).unwrap();
            store.sync().unwrap();
        }
        let store = FileStore::open(&path).unwrap();
        assert_eq!(store.meta().page_count, 7);
        assert_eq!(store.meta().root_page, 3);
        assert_eq!(store.meta().user, [1, 2, 3, 4]);
        let mut buf = [0u8; PAGE_SIZE];
        for (i, want) in pages.iter().enumerate() {
            store.read_page(i as u32, &mut buf).unwrap();
            assert_eq!(buf[..], want[..], "page {i}");
        }
        assert_eq!(store.physical_reads(), 7);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn filestore_rejects_garbage_and_truncation() {
        let path = tmp("garbage");
        std::fs::write(&path, b"definitely not a page file").unwrap();
        assert!(matches!(FileStore::open(&path), Err(StoreError::BadMagic)));

        let pages = sample_pages(4);
        FileStore::create(&path, 0, [0; 4], &pages).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - PAGE_SIZE]).unwrap();
        assert!(matches!(
            FileStore::open(&path),
            Err(StoreError::Truncated { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn filestore_detects_flipped_page_byte() {
        let path = tmp("bitrot");
        let pages = sample_pages(3);
        FileStore::create(&path, 0, [0; 4], &pages).unwrap();
        // Flip one byte in the middle of page 1's on-disk bytes.
        let mut bytes = std::fs::read(&path).unwrap();
        let data_offset = PAGE_SIZE as u64 + table_bytes(3);
        let victim = data_offset as usize + PAGE_SIZE + 100;
        bytes[victim] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let store = FileStore::open(&path).unwrap(); // header+table still fine
        let mut buf = [0u8; PAGE_SIZE];
        store.read_page(0, &mut buf).unwrap(); // untouched page still reads
        assert!(matches!(
            store.read_page(1, &mut buf),
            Err(StoreError::PageChecksum { page: 1 })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn filestore_detects_header_corruption() {
        let path = tmp("badheader");
        FileStore::create(&path, 0, [0; 4], &sample_pages(2)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[20] ^= 0x01; // root page field
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            FileStore::open(&path),
            Err(StoreError::HeaderChecksum)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn filestore_rejects_future_version() {
        let path = tmp("version");
        FileStore::create(&path, 0, [0; 4], &sample_pages(2)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        // Re-stamp the header checksum so only the version is "wrong".
        let crc = crc32(&bytes[0..60]);
        bytes[60..64].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            FileStore::open(&path),
            Err(StoreError::BadVersion(99))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn table_padding_is_page_aligned() {
        assert_eq!(table_bytes(1), PAGE_SIZE as u64);
        assert_eq!(table_bytes(1024), PAGE_SIZE as u64);
        assert_eq!(table_bytes(1025), 2 * PAGE_SIZE as u64);
    }
}
