//! The [`PageStore`] trait and its two backends.
//!
//! A page store is a flat array of fixed-size pages plus a small
//! metadata record ([`StoreMeta`]). [`MemStore`] keeps the pages in a
//! `Vec` (the arena behavior the reproduction started with, now behind
//! the same interface); [`FileStore`] is a real on-disk page file, so
//! every physical read is an actual `read` syscall verified against a
//! checksum recorded at write time.
//!
//! # Read-only file layout (version 1, little-endian)
//!
//! ```text
//! offset            size              field
//! 0                 4096              header page:
//!   0                 8                 magic  b"NWCPAGE\x01"
//!   8                 4                 format version (1)
//!   12                4                 page size (4096)
//!   16                4                 page count
//!   20                4                 root page id
//!   24                32                user metadata (4 × u64, opaque)
//!   56                4                 CRC-32 of the checksum table
//!   60                4                 CRC-32 of header bytes 0..60
//! 4096              ⌈count·4 / 4096⌉·4096   checksum table (u32 per page)
//! …                 count · 4096      data pages
//! ```
//!
//! # Writable file layout (version 2, little-endian)
//!
//! Version 2 supports in-place mutation with **copy-on-write shadow
//! paging**: dirty pages are always written to freshly allocated page
//! ids (never over a page reachable from the committed root), and a
//! commit is an atomic root flip between two ping-pong header slots.
//! The central checksum table of version 1 cannot be updated atomically
//! alongside the root flip, so version 2 embeds each page's CRC-32 in
//! the page itself instead.
//!
//! ```text
//! offset            size              field
//! 0                 4096              header slot 0
//! 4096              4096              header slot 1
//! 8192              count · 4096      data pages; bytes [4092..4096) of
//!                                     each page hold the CRC-32 of
//!                                     bytes [0..4092)
//! ```
//!
//! Each header slot:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"NWCPAGE\x01"
//! 8       4     format version (2)
//! 12      4     page size (4096)
//! 16      4     page count
//! 20      4     root page id
//! 24      32    user metadata (4 × u64, opaque)
//! 56      8     commit generation (u64, strictly increasing)
//! 64      4     CRC-32 of slot bytes 0..64
//! ```
//!
//! Generation `g` lives in slot `(g + 1) % 2`, so successive commits
//! alternate slots and a torn slot write can only hit the *previous*
//! commit's inactive slot. [`FileStore::commit`] orders `sync_all`
//! (data) → inactive-slot write → `sync_all` (header); open picks the
//! valid slot with the highest generation and falls back to the other
//! on a checksum mismatch, so a crash at any commit point reopens as
//! exactly the old or the new tree — the same all-or-nothing discipline
//! [`FileStore::create`]'s staged rename gives whole-file saves.
//!
//! Data pages start on a page-aligned offset, so the operating system's
//! own page cache and read-ahead behave as they would for any database
//! file.

use crate::checksum::crc32;
use crate::error::StoreError;
use crate::PAGE_SIZE;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

const MAGIC: [u8; 8] = *b"NWCPAGE\x01";
const VERSION: u32 = 1;
const VERSION_WRITABLE: u32 = 2;
const HEADER_LEN: usize = 64;
/// Bytes of a version-2 header slot that carry content (the rest of the
/// slot's page is padding): 64 header bytes + 4 CRC bytes.
const SLOT_LEN: usize = 68;
/// Per-page payload bytes in a version-2 file (the final 4 bytes hold
/// the page's embedded CRC-32).
const PAGE_PAYLOAD: usize = PAGE_SIZE - 4;

/// Metadata describing a page store: its shape plus 32 opaque bytes for
/// the client (the R\*-tree packs its `TreeParams` and length there —
/// the store itself never interprets them).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreMeta {
    /// Size of every page, bytes. Always [`PAGE_SIZE`] in version 1.
    pub page_size: u32,
    /// Number of pages in the store.
    pub page_count: u32,
    /// The client's designated root page (must be `< page_count`).
    pub root_page: u32,
    /// Opaque client words, persisted verbatim.
    pub user: [u64; 4],
}

impl StoreMeta {
    /// Metadata for a store of `page_count` pages rooted at `root_page`.
    pub fn new(page_count: u32, root_page: u32, user: [u64; 4]) -> Self {
        StoreMeta {
            page_size: PAGE_SIZE as u32,
            page_count,
            root_page,
            user,
        }
    }

    fn validate(&self) -> Result<(), StoreError> {
        if self.page_size != PAGE_SIZE as u32 {
            return Err(StoreError::BadPageSize(self.page_size));
        }
        if self.page_count == 0 {
            return Err(StoreError::Empty);
        }
        if self.root_page >= self.page_count {
            return Err(StoreError::BadRoot {
                root: self.root_page,
                page_count: self.page_count,
            });
        }
        Ok(())
    }
}

/// A read-only array of fixed-size pages with metadata.
///
/// Implementations are `Send + Sync`: queries run from many threads at
/// once, and the buffer pool calls [`PageStore::read_page`] on misses
/// from whichever thread missed. Every successful `read_page` counts as
/// one physical read.
pub trait PageStore: Send + Sync {
    /// The store's metadata record.
    fn meta(&self) -> StoreMeta;

    /// Reads page `page` into `buf` (which must be exactly
    /// [`PAGE_SIZE`] bytes), verifying integrity where the backend can.
    fn read_page(&self, page: u32, buf: &mut [u8]) -> Result<(), StoreError>;

    /// As [`PageStore::read_page`], but the read is **not** charged to
    /// the physical-read counter. For bookkeeping walks that the I/O
    /// accounting deliberately excludes (entry iteration, index builds,
    /// invariant checks) — never for query paths.
    fn read_page_uncounted(&self, page: u32, buf: &mut [u8]) -> Result<(), StoreError>;

    /// Reads `buf.len() / PAGE_SIZE` consecutive pages starting at
    /// `first` into `buf` — the readahead primitive. Like
    /// [`PageStore::read_page_uncounted`] this is **not** charged to the
    /// physical-read counter: readahead accounting is the caller's job
    /// (the demand counter must keep meaning "reads the queries forced",
    /// so prefetch cannot pollute it). `buf` must be a whole number of
    /// pages. The default implementation loops single-page reads;
    /// backends with a cheaper batched path (one seek + one contiguous
    /// read for [`FileStore`]) override it.
    fn read_run_uncounted(&self, first: u32, buf: &mut [u8]) -> Result<(), StoreError> {
        assert_eq!(buf.len() % PAGE_SIZE, 0, "run buffer must be whole pages");
        for (i, chunk) in buf.chunks_mut(PAGE_SIZE).enumerate() {
            self.read_page_uncounted(first + i as u32, chunk)?;
        }
        Ok(())
    }

    /// Number of successful physical page reads since construction or
    /// the last [`PageStore::reset_counters`].
    fn physical_reads(&self) -> u64;

    /// Zeroes the physical-read counter (e.g. after a warm-up scan).
    fn reset_counters(&self);

    /// Flushes any buffered writes to durable storage. A no-op for
    /// read-only and in-memory backends.
    fn sync(&self) -> Result<(), StoreError>;

    /// Whether this store accepts [`PageStore::write_page`],
    /// [`PageStore::grow`], and [`PageStore::commit`]. Read-only
    /// backends (the default) return `false`.
    fn is_writable(&self) -> bool {
        false
    }

    /// Writes `buf` (exactly [`PAGE_SIZE`] bytes) to page `page`.
    ///
    /// The final 4 bytes of every page are reserved for backend
    /// integrity metadata (the embedded CRC-32 of a writable
    /// [`FileStore`]); callers must leave them zero. The write is
    /// **not** durable until [`PageStore::commit`]; shadow-paging
    /// callers only ever write pages unreachable from the committed
    /// root, so a crash before commit cannot corrupt committed state.
    fn write_page(&self, _page: u32, _buf: &[u8]) -> Result<(), StoreError> {
        Err(StoreError::ReadOnly)
    }

    /// Appends `additional` zeroed pages, returning the id of the first
    /// new page. Growth is provisional until the next
    /// [`PageStore::commit`] records the enlarged page count.
    fn grow(&self, _additional: u32) -> Result<u32, StoreError> {
        Err(StoreError::ReadOnly)
    }

    /// Atomically publishes every write since the last commit: after
    /// `commit` returns, [`PageStore::meta`] reports `root_page`,
    /// `user`, and the grown page count, and a crash-reopen yields
    /// exactly this state. On failure the previously committed state
    /// remains intact and the caller may retry.
    fn commit(&self, _root_page: u32, _user: [u64; 4]) -> Result<(), StoreError> {
        Err(StoreError::ReadOnly)
    }
}

// A shared handle is a store: callers keep an `Arc` to a wrapped store
// (e.g. a `FaultStore`) for scripting and counters while the tree owns
// another clone of the same handle.
impl<S: PageStore + ?Sized> PageStore for Arc<S> {
    fn meta(&self) -> StoreMeta {
        (**self).meta()
    }

    fn read_page(&self, page: u32, buf: &mut [u8]) -> Result<(), StoreError> {
        (**self).read_page(page, buf)
    }

    fn read_page_uncounted(&self, page: u32, buf: &mut [u8]) -> Result<(), StoreError> {
        (**self).read_page_uncounted(page, buf)
    }

    fn read_run_uncounted(&self, first: u32, buf: &mut [u8]) -> Result<(), StoreError> {
        (**self).read_run_uncounted(first, buf)
    }

    fn physical_reads(&self) -> u64 {
        (**self).physical_reads()
    }

    fn reset_counters(&self) {
        (**self).reset_counters()
    }

    fn sync(&self) -> Result<(), StoreError> {
        (**self).sync()
    }

    fn is_writable(&self) -> bool {
        (**self).is_writable()
    }

    fn write_page(&self, page: u32, buf: &[u8]) -> Result<(), StoreError> {
        (**self).write_page(page, buf)
    }

    fn grow(&self, additional: u32) -> Result<u32, StoreError> {
        (**self).grow(additional)
    }

    fn commit(&self, root_page: u32, user: [u64; 4]) -> Result<(), StoreError> {
        (**self).commit(root_page, user)
    }
}

// ---------------------------------------------------------------------
// MemStore
// ---------------------------------------------------------------------

/// An in-memory [`PageStore`]: pages live in a `Vec`. This is the
/// pre-storage-engine behavior behind the storage interface — useful for
/// tests and for buffer-pool experiments without touching a filesystem.
/// [`MemStore::new_writable`] opts into the write path (no durability —
/// commit just republishes the in-memory metadata), which lets tests
/// exercise shadow-paging clients without a filesystem.
pub struct MemStore {
    state: Mutex<MemState>,
    writable: bool,
    reads: AtomicU64,
}

struct MemState {
    /// Committed metadata. `page_count` lags `pages.len()` between a
    /// `grow` and the commit that publishes it.
    meta: StoreMeta,
    pages: Vec<[u8; PAGE_SIZE]>,
}

impl MemStore {
    /// Builds a read-only store over `pages` rooted at `root_page`.
    pub fn new(
        pages: Vec<[u8; PAGE_SIZE]>,
        root_page: u32,
        user: [u64; 4],
    ) -> Result<MemStore, StoreError> {
        let meta = StoreMeta::new(
            u32::try_from(pages.len()).expect("page count overflows u32"),
            root_page,
            user,
        );
        meta.validate()?;
        Ok(MemStore {
            state: Mutex::new(MemState { meta, pages }),
            writable: false,
            reads: AtomicU64::new(0),
        })
    }

    /// As [`MemStore::new`], but accepting writes, growth, and commits.
    pub fn new_writable(
        pages: Vec<[u8; PAGE_SIZE]>,
        root_page: u32,
        user: [u64; 4],
    ) -> Result<MemStore, StoreError> {
        let mut store = MemStore::new(pages, root_page, user)?;
        store.writable = true;
        Ok(store)
    }

    fn lock_state(&self) -> MutexGuard<'_, MemState> {
        // Nothing in this module panics while holding the lock; recover
        // rather than cascade a caller's unwind.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access to one page, for corruption-injection in tests.
    pub fn page_mut(&mut self, page: u32) -> &mut [u8; PAGE_SIZE] {
        let state = self
            .state
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner);
        &mut state.pages[page as usize]
    }
}

impl PageStore for MemStore {
    fn meta(&self) -> StoreMeta {
        self.lock_state().meta
    }

    fn read_page(&self, page: u32, buf: &mut [u8]) -> Result<(), StoreError> {
        self.read_page_uncounted(page, buf)?;
        self.reads.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn read_page_uncounted(&self, page: u32, buf: &mut [u8]) -> Result<(), StoreError> {
        assert_eq!(buf.len(), PAGE_SIZE, "read buffer must be one page");
        let state = self.lock_state();
        let src = state
            .pages
            .get(page as usize)
            .ok_or(StoreError::PageOutOfRange {
                page,
                page_count: state.pages.len() as u32,
            })?;
        buf.copy_from_slice(src);
        Ok(())
    }

    fn physical_reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    fn reset_counters(&self) {
        self.reads.store(0, Ordering::Relaxed);
    }

    fn sync(&self) -> Result<(), StoreError> {
        Ok(())
    }

    fn is_writable(&self) -> bool {
        self.writable
    }

    fn write_page(&self, page: u32, buf: &[u8]) -> Result<(), StoreError> {
        if !self.writable {
            return Err(StoreError::ReadOnly);
        }
        assert_eq!(buf.len(), PAGE_SIZE, "write buffer must be one page");
        let mut state = self.lock_state();
        let count = state.pages.len() as u32;
        let dst = state
            .pages
            .get_mut(page as usize)
            .ok_or(StoreError::PageOutOfRange {
                page,
                page_count: count,
            })?;
        dst.copy_from_slice(buf);
        Ok(())
    }

    fn grow(&self, additional: u32) -> Result<u32, StoreError> {
        if !self.writable {
            return Err(StoreError::ReadOnly);
        }
        let mut state = self.lock_state();
        let first = state.pages.len() as u32;
        let new_len = state.pages.len() + additional as usize;
        state.pages.resize(new_len, [0u8; PAGE_SIZE]);
        Ok(first)
    }

    fn commit(&self, root_page: u32, user: [u64; 4]) -> Result<(), StoreError> {
        if !self.writable {
            return Err(StoreError::ReadOnly);
        }
        let mut state = self.lock_state();
        let meta = StoreMeta::new(state.pages.len() as u32, root_page, user);
        meta.validate()?;
        state.meta = meta;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// FileStore
// ---------------------------------------------------------------------

/// An on-disk [`PageStore`]: a page file with a checksummed header and a
/// CRC-32 per page (see the module docs for the two layouts). Open with
/// [`FileStore::open`] (which detects the format), create a read-only
/// version-1 file with [`FileStore::create`] or a writable
/// shadow-paging version-2 file with [`FileStore::create_writable`].
pub struct FileStore {
    // The pool serializes loads anyway, so a mutex (portable) costs no
    // extra contention over platform positioned-read APIs.
    file: Mutex<File>,
    /// Committed metadata: what a crash-reopen would observe.
    meta: Mutex<StoreMeta>,
    /// Committed commit generation (version 2; 0 for version 1).
    generation: AtomicU64,
    /// Total pages in the file, **including** grown-but-uncommitted
    /// ones — the bound for reads and writes. Equals the committed
    /// page count except between a [`FileStore::grow`] and the next
    /// commit.
    pages_total: AtomicU32,
    /// Version 1 only: the central CRC-32 table loaded and verified at
    /// open. Empty for version 2, where each page embeds its own CRC.
    checksums: Vec<u32>,
    /// On-disk format version (1 = read-only, 2 = writable).
    version: u32,
    /// Byte offset of data page 0.
    data_offset: u64,
    /// Whether the write path is available: a version-2 file opened
    /// with write permission.
    writable: bool,
    reads: AtomicU64,
    /// Advisory path lock, released when the store drops.
    _lock: PathLock,
}

/// Bytes occupied by the checksum table, padded to whole pages.
fn table_bytes(page_count: u32) -> u64 {
    let raw = page_count as u64 * 4;
    raw.div_ceil(PAGE_SIZE as u64) * PAGE_SIZE as u64
}

fn encode_header(meta: &StoreMeta, table_crc: u32) -> [u8; PAGE_SIZE] {
    let mut h = [0u8; PAGE_SIZE];
    h[0..8].copy_from_slice(&MAGIC);
    h[8..12].copy_from_slice(&VERSION.to_le_bytes());
    h[12..16].copy_from_slice(&meta.page_size.to_le_bytes());
    h[16..20].copy_from_slice(&meta.page_count.to_le_bytes());
    h[20..24].copy_from_slice(&meta.root_page.to_le_bytes());
    for (i, w) in meta.user.iter().enumerate() {
        h[24 + i * 8..32 + i * 8].copy_from_slice(&w.to_le_bytes());
    }
    h[56..60].copy_from_slice(&table_crc.to_le_bytes());
    let header_crc = crc32(&h[0..60]);
    h[60..64].copy_from_slice(&header_crc.to_le_bytes());
    h
}

/// Encodes one version-2 header slot (a full page, content in the first
/// [`SLOT_LEN`] bytes). Generation `g` always lands in slot
/// `(g + 1) % 2`.
fn encode_header_v2(meta: &StoreMeta, generation: u64) -> [u8; PAGE_SIZE] {
    let mut h = [0u8; PAGE_SIZE];
    h[0..8].copy_from_slice(&MAGIC);
    h[8..12].copy_from_slice(&VERSION_WRITABLE.to_le_bytes());
    h[12..16].copy_from_slice(&meta.page_size.to_le_bytes());
    h[16..20].copy_from_slice(&meta.page_count.to_le_bytes());
    h[20..24].copy_from_slice(&meta.root_page.to_le_bytes());
    for (i, w) in meta.user.iter().enumerate() {
        h[24 + i * 8..32 + i * 8].copy_from_slice(&w.to_le_bytes());
    }
    h[56..64].copy_from_slice(&generation.to_le_bytes());
    let slot_crc = crc32(&h[0..64]);
    h[64..68].copy_from_slice(&slot_crc.to_le_bytes());
    h
}

/// The file offset of version-2 header slot `(generation + 1) % 2`.
fn v2_slot_offset(generation: u64) -> u64 {
    ((generation + 1) % 2) * PAGE_SIZE as u64
}

/// Decodes `buf` as a version-2 header slot; `None` when the magic,
/// checksum, version, or metadata is invalid (a torn or never-written
/// slot — the caller falls back to the sibling slot).
fn parse_v2_slot(buf: &[u8]) -> Option<(StoreMeta, u64)> {
    if buf.len() < SLOT_LEN || buf[0..8] != MAGIC {
        return None;
    }
    let stored_crc = u32::from_le_bytes(buf[64..68].try_into().unwrap());
    if crc32(&buf[0..64]) != stored_crc {
        return None;
    }
    if u32::from_le_bytes(buf[8..12].try_into().unwrap()) != VERSION_WRITABLE {
        return None;
    }
    let meta = StoreMeta {
        page_size: u32::from_le_bytes(buf[12..16].try_into().unwrap()),
        page_count: u32::from_le_bytes(buf[16..20].try_into().unwrap()),
        root_page: u32::from_le_bytes(buf[20..24].try_into().unwrap()),
        user: {
            let mut user = [0u64; 4];
            for (i, w) in user.iter_mut().enumerate() {
                *w = u64::from_le_bytes(buf[24 + i * 8..32 + i * 8].try_into().unwrap());
            }
            user
        },
    };
    meta.validate().ok()?;
    let generation = u64::from_le_bytes(buf[56..64].try_into().unwrap());
    Some((meta, generation))
}

/// Stamps the embedded CRC-32 trailer onto a copy of `page` (version-2
/// page image). The payload region is everything before the trailer.
fn stamp_page_crc(page: &[u8; PAGE_SIZE]) -> [u8; PAGE_SIZE] {
    let mut stamped = *page;
    let crc = crc32(&stamped[..PAGE_PAYLOAD]);
    stamped[PAGE_PAYLOAD..].copy_from_slice(&crc.to_le_bytes());
    stamped
}

/// The sibling temp path `create` stages its writes in: `<name>.tmp`
/// next to the target. Deterministic so [`FileStore::open`] can clean a
/// stray one left by a crash (the layer assumes a single writer per
/// path, which `save_to_path`-style callers satisfy).
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "pagefile".into());
    name.push(".tmp");
    path.with_file_name(name)
}

/// The advisory lock sibling `<name>.lock` next to a page file.
fn lock_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "pagefile".into());
    name.push(".lock");
    path.with_file_name(name)
}

/// An exclusive advisory lock on a page-file path, held for the life of
/// a [`FileStore`] (reader or writer alike): a second process cannot
/// re-create a file an open reader is using, and a reader cannot open a
/// file mid-rewrite. Implemented as an `O_EXCL`-created `<name>.lock`
/// sibling holding the owner's pid; released (unlinked) on drop.
struct PathLock {
    path: PathBuf,
}

/// Whether the lock file's recorded owner is provably dead. Only
/// trustworthy where `/proc` exposes live pids (Linux); elsewhere be
/// conservative and treat the lock as held.
fn lock_holder_is_gone(lock_path: &Path) -> bool {
    if !Path::new("/proc/self").exists() {
        return false;
    }
    match fs::read_to_string(lock_path) {
        Ok(s) => match s.trim().parse::<u32>() {
            Ok(pid) => !Path::new(&format!("/proc/{pid}")).exists(),
            Err(_) => false,
        },
        Err(_) => false,
    }
}

impl PathLock {
    fn acquire(target: &Path) -> Result<PathLock, StoreError> {
        let lock_path = lock_sibling(target);
        // Two rounds: the second exists solely to grab a stale lock the
        // first round reclaimed from a crashed holder.
        for _ in 0..2 {
            match OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&lock_path)
            {
                Ok(mut f) => {
                    // Best-effort pid tag — stale-lock reclaim reads it;
                    // the lock is valid even if the write fails.
                    let _ = f.write_all(std::process::id().to_string().as_bytes());
                    return Ok(PathLock { path: lock_path });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    if lock_holder_is_gone(&lock_path) {
                        fs::remove_file(&lock_path).ok();
                        continue;
                    }
                    return Err(StoreError::Locked { lock_path });
                }
                Err(e) => return Err(e.into()),
            }
        }
        Err(StoreError::Locked { lock_path })
    }
}

impl Drop for PathLock {
    fn drop(&mut self) {
        fs::remove_file(&self.path).ok();
    }
}

/// Fsyncs `path`'s parent directory so a just-renamed entry is durable.
fn fsync_parent_dir(path: &Path) -> std::io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    // Directories cannot be opened for syncing on every platform; only
    // where the platform refuses the open is the rename itself the best
    // available guarantee. Any other open failure — like any sync
    // failure — is a real durability error and must surface.
    match File::open(parent) {
        Ok(dir) => dir.sync_all(),
        Err(e) if matches!(
            e.kind(),
            io::ErrorKind::Unsupported | io::ErrorKind::PermissionDenied
        ) =>
        {
            Ok(())
        }
        Err(e) => Err(e),
    }
}

impl FileStore {
    /// Writes a new page file at `path` (replacing any existing file)
    /// and returns the opened store.
    ///
    /// The replacement is **all-or-nothing**: bytes are staged in a
    /// sibling `<name>.tmp`, fsynced, then atomically renamed over
    /// `path`, and the parent directory is fsynced so the rename itself
    /// is durable. A crash at any point leaves either the old file or
    /// the new one — never a truncated hybrid — plus at worst a stray
    /// temp file that [`FileStore::open`] cleans up.
    ///
    /// The path's advisory lock is taken first and held until the
    /// returned store drops: while another process has the file open
    /// (reading or writing), `create` returns [`StoreError::Locked`]
    /// instead of rewriting pages under an active reader.
    pub fn create(
        path: &Path,
        root_page: u32,
        user: [u64; 4],
        pages: &[[u8; PAGE_SIZE]],
    ) -> Result<FileStore, StoreError> {
        let lock = PathLock::acquire(path)?;
        let meta = StoreMeta::new(
            u32::try_from(pages.len()).expect("page count overflows u32"),
            root_page,
            user,
        );
        meta.validate()?;

        let checksums: Vec<u32> = pages.iter().map(|p| crc32(p)).collect();
        let mut table = vec![0u8; table_bytes(meta.page_count) as usize];
        for (i, c) in checksums.iter().enumerate() {
            table[i * 4..i * 4 + 4].copy_from_slice(&c.to_le_bytes());
        }
        let table_crc = crc32(&table);

        let tmp = tmp_sibling(path);
        let write_and_swap = |tmp: &Path| -> Result<File, StoreError> {
            let mut file = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(tmp)?;
            file.write_all(&encode_header(&meta, table_crc))?;
            file.write_all(&table)?;
            for p in pages {
                file.write_all(p)?;
            }
            file.sync_all()?;
            // The handle stays valid across the rename (same inode).
            fs::rename(tmp, path)?;
            fsync_parent_dir(path)?;
            Ok(file)
        };
        let file = write_and_swap(&tmp).inspect_err(|_| {
            // Failed mid-stage: the target is untouched; drop the
            // half-written temp file if one was created.
            fs::remove_file(&tmp).ok();
        })?;

        Ok(FileStore {
            file: Mutex::new(file),
            meta: Mutex::new(meta),
            generation: AtomicU64::new(0),
            pages_total: AtomicU32::new(meta.page_count),
            checksums,
            version: VERSION,
            data_offset: PAGE_SIZE as u64 + table_bytes(meta.page_count),
            writable: false,
            reads: AtomicU64::new(0),
            _lock: lock,
        })
    }

    /// Writes a new **writable** (version 2, shadow-paging) page file at
    /// `path` and returns the opened store, with the same staged-rename
    /// all-or-nothing discipline as [`FileStore::create`].
    ///
    /// Each page's final 4 bytes are overwritten with its embedded
    /// CRC-32 trailer, so callers must leave them zero.
    pub fn create_writable(
        path: &Path,
        root_page: u32,
        user: [u64; 4],
        pages: &[[u8; PAGE_SIZE]],
    ) -> Result<FileStore, StoreError> {
        let lock = PathLock::acquire(path)?;
        let meta = StoreMeta::new(
            u32::try_from(pages.len()).expect("page count overflows u32"),
            root_page,
            user,
        );
        meta.validate()?;
        let generation = 1u64;
        debug_assert_eq!(v2_slot_offset(generation), 0, "first commit lives in slot 0");
        let header = encode_header_v2(&meta, generation);

        let tmp = tmp_sibling(path);
        let write_and_swap = |tmp: &Path| -> Result<File, StoreError> {
            let mut file = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(tmp)?;
            file.write_all(&header)?;
            // Slot 1 stays zeroed (invalid) until the first in-place
            // commit writes generation 2 there.
            file.write_all(&[0u8; PAGE_SIZE])?;
            for p in pages {
                debug_assert!(
                    p[PAGE_PAYLOAD..].iter().all(|&b| b == 0),
                    "page trailer bytes are reserved for the CRC"
                );
                file.write_all(&stamp_page_crc(p))?;
            }
            file.sync_all()?;
            // The handle stays valid across the rename (same inode).
            fs::rename(tmp, path)?;
            fsync_parent_dir(path)?;
            Ok(file)
        };
        let file = write_and_swap(&tmp).inspect_err(|_| {
            fs::remove_file(&tmp).ok();
        })?;

        Ok(FileStore {
            file: Mutex::new(file),
            meta: Mutex::new(meta),
            generation: AtomicU64::new(generation),
            pages_total: AtomicU32::new(meta.page_count),
            checksums: Vec::new(),
            version: VERSION_WRITABLE,
            data_offset: 2 * PAGE_SIZE as u64,
            writable: true,
            reads: AtomicU64::new(0),
            _lock: lock,
        })
    }

    /// Opens an existing page file, validating the magic, version, page
    /// size, header checksum(s), root page, file length, and page
    /// checksums' anchor (the central table for version 1; version 2
    /// verifies its embedded per-page trailers on demand). Corrupt
    /// files are rejected with a typed [`StoreError`].
    ///
    /// The format is detected from the header: version-1 files open
    /// read-only, version-2 files open writable when the filesystem
    /// permits (falling back to read-only otherwise). A version-2 file
    /// whose most recent header slot was torn by a crash falls back to
    /// the sibling slot — the previous committed state.
    ///
    /// Holds the path's advisory lock for the store's lifetime, so a
    /// concurrent [`FileStore::create`] cannot rewrite the file under
    /// this reader — it gets [`StoreError::Locked`] instead.
    pub fn open(path: &Path) -> Result<FileStore, StoreError> {
        let lock = PathLock::acquire(path)?;
        // A stray staging file here means a previous save crashed after
        // writing it but before (or during) the rename. It is never the
        // authoritative copy — remove it best-effort and ignore failure
        // (e.g. something unrelated occupies the name).
        fs::remove_file(tmp_sibling(path)).ok();
        let mut file = File::open(path)?;
        let read_slot = |file: &mut File, offset: u64| -> Option<[u8; SLOT_LEN]> {
            let mut buf = [0u8; SLOT_LEN];
            (file.seek(SeekFrom::Start(offset)).is_ok() && file.read_exact(&mut buf).is_ok())
                .then_some(buf)
        };
        let slot0 = read_slot(&mut file, 0);
        let slot1 = read_slot(&mut file, PAGE_SIZE as u64);

        let Some(header) = slot0.filter(|s| s[0..8] == MAGIC) else {
            // No valid magic at offset 0: either not a page file at
            // all, or a version-2 file whose slot 0 was torn mid-write
            // — the sibling slot still holds a committed state.
            if let Some((meta, generation)) = slot1.and_then(|s| parse_v2_slot(&s)) {
                return FileStore::open_v2(path, file, meta, generation, lock);
            }
            return Err(StoreError::BadMagic);
        };
        let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if version == VERSION {
            return FileStore::open_v1(file, &header[..HEADER_LEN], lock);
        }
        // Version 2 (or a torn version field): pick the valid slot with
        // the highest generation.
        let best = [slot0, slot1]
            .into_iter()
            .flatten()
            .filter_map(|s| parse_v2_slot(&s))
            .max_by_key(|&(_, generation)| generation);
        match best {
            Some((meta, generation)) => FileStore::open_v2(path, file, meta, generation, lock),
            None if version == VERSION_WRITABLE => Err(StoreError::HeaderChecksum),
            None => Err(StoreError::BadVersion(version)),
        }
    }

    /// Version-1 open: validate the header CRC and the central checksum
    /// table, then serve reads from the read-only handle.
    fn open_v1(
        mut file: File,
        header: &[u8],
        lock: PathLock,
    ) -> Result<FileStore, StoreError> {
        let stored_crc = u32::from_le_bytes(header[60..64].try_into().unwrap());
        if crc32(&header[0..60]) != stored_crc {
            return Err(StoreError::HeaderChecksum);
        }
        let meta = StoreMeta {
            page_size: u32::from_le_bytes(header[12..16].try_into().unwrap()),
            page_count: u32::from_le_bytes(header[16..20].try_into().unwrap()),
            root_page: u32::from_le_bytes(header[20..24].try_into().unwrap()),
            user: {
                let mut user = [0u64; 4];
                for (i, w) in user.iter_mut().enumerate() {
                    *w = u64::from_le_bytes(header[24 + i * 8..32 + i * 8].try_into().unwrap());
                }
                user
            },
        };
        meta.validate()?;

        let data_offset = PAGE_SIZE as u64 + table_bytes(meta.page_count);
        let expected = data_offset + meta.page_count as u64 * PAGE_SIZE as u64;
        let actual = file.metadata()?.len();
        if actual < expected {
            return Err(StoreError::Truncated { expected, actual });
        }

        let mut table = vec![0u8; table_bytes(meta.page_count) as usize];
        file.seek(SeekFrom::Start(PAGE_SIZE as u64))?;
        file.read_exact(&mut table)?;
        let table_crc = u32::from_le_bytes(header[56..60].try_into().unwrap());
        if crc32(&table) != table_crc {
            return Err(StoreError::HeaderChecksum);
        }
        let checksums: Vec<u32> = (0..meta.page_count as usize)
            .map(|i| u32::from_le_bytes(table[i * 4..i * 4 + 4].try_into().unwrap()))
            .collect();

        Ok(FileStore {
            file: Mutex::new(file),
            meta: Mutex::new(meta),
            generation: AtomicU64::new(0),
            pages_total: AtomicU32::new(meta.page_count),
            checksums,
            version: VERSION,
            data_offset,
            writable: false,
            reads: AtomicU64::new(0),
            _lock: lock,
        })
    }

    /// Version-2 open from an already-selected committed header slot:
    /// check the file extent, reopen with write permission when
    /// available, and trim crash garbage (grown-but-uncommitted tail
    /// pages) back to the committed extent.
    fn open_v2(
        path: &Path,
        file: File,
        meta: StoreMeta,
        generation: u64,
        lock: PathLock,
    ) -> Result<FileStore, StoreError> {
        let data_offset = 2 * PAGE_SIZE as u64;
        let expected = data_offset + meta.page_count as u64 * PAGE_SIZE as u64;
        let actual = file.metadata()?.len();
        if actual < expected {
            return Err(StoreError::Truncated { expected, actual });
        }
        drop(file);
        let (file, writable) = match OpenOptions::new().read(true).write(true).open(path) {
            Ok(f) => (f, true),
            // A read-only filesystem or permissions still serve queries.
            Err(_) => (File::open(path)?, false),
        };
        if writable && actual > expected {
            // Pages grown by a crashed, never-committed mutation batch:
            // unreachable from the committed root by the shadow-paging
            // discipline, so truncating them loses nothing.
            file.set_len(expected)?;
        }
        Ok(FileStore {
            file: Mutex::new(file),
            meta: Mutex::new(meta),
            generation: AtomicU64::new(generation),
            pages_total: AtomicU32::new(meta.page_count),
            checksums: Vec::new(),
            version: VERSION_WRITABLE,
            data_offset,
            writable,
            reads: AtomicU64::new(0),
            _lock: lock,
        })
    }

    /// The store's committed commit generation (0 for version-1 files).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    fn lock_file(&self) -> MutexGuard<'_, File> {
        // A panic while holding the file lock (it cannot happen in
        // this body, but a caller's unwind could in principle cross
        // it) leaves no broken invariant: recover, don't propagate.
        self.file.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_meta(&self) -> MutexGuard<'_, StoreMeta> {
        self.meta.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Verifies one page's bytes against its recorded checksum — the
    /// central table (version 1) or the embedded trailer (version 2).
    fn verify_page(&self, page: u32, buf: &[u8]) -> Result<(), StoreError> {
        let ok = if self.version == VERSION {
            crc32(buf) == self.checksums[page as usize]
        } else {
            let stored = u32::from_le_bytes(buf[PAGE_PAYLOAD..PAGE_SIZE].try_into().unwrap());
            crc32(&buf[..PAGE_PAYLOAD]) == stored
        };
        if ok {
            Ok(())
        } else {
            Err(StoreError::PageChecksum { page })
        }
    }
}

impl PageStore for FileStore {
    fn meta(&self) -> StoreMeta {
        *self.lock_meta()
    }

    fn read_page(&self, page: u32, buf: &mut [u8]) -> Result<(), StoreError> {
        self.read_page_uncounted(page, buf)?;
        self.reads.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn read_page_uncounted(&self, page: u32, buf: &mut [u8]) -> Result<(), StoreError> {
        assert_eq!(buf.len(), PAGE_SIZE, "read buffer must be one page");
        let total = self.pages_total.load(Ordering::Relaxed);
        if page >= total {
            return Err(StoreError::PageOutOfRange {
                page,
                page_count: total,
            });
        }
        {
            let mut file = self.lock_file();
            file.seek(SeekFrom::Start(
                self.data_offset + page as u64 * PAGE_SIZE as u64,
            ))?;
            file.read_exact(buf)?;
        }
        self.verify_page(page, buf)
    }

    fn read_run_uncounted(&self, first: u32, buf: &mut [u8]) -> Result<(), StoreError> {
        assert_eq!(buf.len() % PAGE_SIZE, 0, "run buffer must be whole pages");
        let count = (buf.len() / PAGE_SIZE) as u32;
        if count == 0 {
            return Ok(());
        }
        let total = self.pages_total.load(Ordering::Relaxed);
        let last = first.saturating_add(count - 1);
        if first.checked_add(count - 1).is_none() || last >= total {
            return Err(StoreError::PageOutOfRange {
                page: last,
                page_count: total,
            });
        }
        {
            // One seek + one contiguous read for the whole run — this is
            // the syscall batching a clustered page layout buys.
            let mut file = self.lock_file();
            file.seek(SeekFrom::Start(
                self.data_offset + first as u64 * PAGE_SIZE as u64,
            ))?;
            file.read_exact(buf)?;
        }
        for (i, chunk) in buf.chunks(PAGE_SIZE).enumerate() {
            self.verify_page(first + i as u32, chunk)?;
        }
        Ok(())
    }

    fn physical_reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    fn reset_counters(&self) {
        self.reads.store(0, Ordering::Relaxed);
    }

    fn sync(&self) -> Result<(), StoreError> {
        Ok(self.lock_file().sync_all()?)
    }

    fn is_writable(&self) -> bool {
        self.writable
    }

    fn write_page(&self, page: u32, buf: &[u8]) -> Result<(), StoreError> {
        if !self.writable {
            return Err(StoreError::ReadOnly);
        }
        assert_eq!(buf.len(), PAGE_SIZE, "write buffer must be one page");
        let total = self.pages_total.load(Ordering::Relaxed);
        if page >= total {
            return Err(StoreError::PageOutOfRange {
                page,
                page_count: total,
            });
        }
        let mut stamped = [0u8; PAGE_SIZE];
        stamped.copy_from_slice(buf);
        let stamped = stamp_page_crc(&stamped);
        let mut file = self.lock_file();
        file.seek(SeekFrom::Start(
            self.data_offset + page as u64 * PAGE_SIZE as u64,
        ))?;
        file.write_all(&stamped)?;
        Ok(())
    }

    fn grow(&self, additional: u32) -> Result<u32, StoreError> {
        if !self.writable {
            return Err(StoreError::ReadOnly);
        }
        // Hold the file lock so concurrent grows serialize their
        // (load, set_len, store) sequences.
        let file = self.lock_file();
        let first = self.pages_total.load(Ordering::Relaxed);
        let total = first
            .checked_add(additional)
            .expect("page count overflows u32");
        file.set_len(self.data_offset + total as u64 * PAGE_SIZE as u64)?;
        self.pages_total.store(total, Ordering::Relaxed);
        Ok(first)
    }

    fn commit(&self, root_page: u32, user: [u64; 4]) -> Result<(), StoreError> {
        if !self.writable {
            return Err(StoreError::ReadOnly);
        }
        let total = self.pages_total.load(Ordering::Relaxed);
        let meta = StoreMeta::new(total, root_page, user);
        meta.validate()?;
        let generation = self.generation.load(Ordering::Relaxed) + 1;
        let header = encode_header_v2(&meta, generation);
        {
            let mut file = self.lock_file();
            // Ordering is the crash-consistency contract: data pages
            // durable *before* the root flip is written, the flip
            // durable before the commit reports success. A crash
            // between the syncs leaves the old slot authoritative (the
            // new slot is either absent or torn, and torn slots fail
            // their CRC at open).
            file.sync_all()?;
            file.seek(SeekFrom::Start(v2_slot_offset(generation)))?;
            file.write_all(&header)?;
            file.sync_all()?;
        }
        *self.lock_meta() = meta;
        self.generation.store(generation, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_pages(n: usize) -> Vec<[u8; PAGE_SIZE]> {
        (0..n)
            .map(|i| {
                let mut p = [0u8; PAGE_SIZE];
                for (j, b) in p.iter_mut().enumerate() {
                    *b = ((i * 131 + j * 7) % 251) as u8;
                }
                p
            })
            .collect()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("nwc_store_test_{}_{name}", std::process::id()))
    }

    #[test]
    fn memstore_roundtrip_and_counting() {
        let store = MemStore::new(sample_pages(5), 2, [9, 8, 7, 6]).unwrap();
        assert_eq!(store.meta().page_count, 5);
        assert_eq!(store.meta().root_page, 2);
        assert_eq!(store.meta().user, [9, 8, 7, 6]);
        let mut buf = [0u8; PAGE_SIZE];
        store.read_page(4, &mut buf).unwrap();
        assert_eq!(buf[..], sample_pages(5)[4][..]);
        assert_eq!(store.physical_reads(), 1);
        store.reset_counters();
        assert_eq!(store.physical_reads(), 0);
        assert!(matches!(
            store.read_page(5, &mut buf),
            Err(StoreError::PageOutOfRange { page: 5, .. })
        ));
    }

    #[test]
    fn memstore_rejects_bad_root_and_empty() {
        assert!(matches!(
            MemStore::new(sample_pages(3), 3, [0; 4]),
            Err(StoreError::BadRoot { .. })
        ));
        assert!(matches!(
            MemStore::new(Vec::new(), 0, [0; 4]),
            Err(StoreError::Empty)
        ));
    }

    #[test]
    fn filestore_create_open_read() {
        let path = tmp("roundtrip");
        let pages = sample_pages(7);
        {
            let store = FileStore::create(&path, 3, [1, 2, 3, 4], &pages).unwrap();
            store.sync().unwrap();
        }
        let store = FileStore::open(&path).unwrap();
        assert_eq!(store.meta().page_count, 7);
        assert_eq!(store.meta().root_page, 3);
        assert_eq!(store.meta().user, [1, 2, 3, 4]);
        let mut buf = [0u8; PAGE_SIZE];
        for (i, want) in pages.iter().enumerate() {
            store.read_page(i as u32, &mut buf).unwrap();
            assert_eq!(buf[..], want[..], "page {i}");
        }
        assert_eq!(store.physical_reads(), 7);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn filestore_rejects_garbage_and_truncation() {
        let path = tmp("garbage");
        std::fs::write(&path, b"definitely not a page file").unwrap();
        assert!(matches!(FileStore::open(&path), Err(StoreError::BadMagic)));

        let pages = sample_pages(4);
        FileStore::create(&path, 0, [0; 4], &pages).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - PAGE_SIZE]).unwrap();
        assert!(matches!(
            FileStore::open(&path),
            Err(StoreError::Truncated { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn filestore_detects_flipped_page_byte() {
        let path = tmp("bitrot");
        let pages = sample_pages(3);
        FileStore::create(&path, 0, [0; 4], &pages).unwrap();
        // Flip one byte in the middle of page 1's on-disk bytes.
        let mut bytes = std::fs::read(&path).unwrap();
        let data_offset = PAGE_SIZE as u64 + table_bytes(3);
        let victim = data_offset as usize + PAGE_SIZE + 100;
        bytes[victim] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let store = FileStore::open(&path).unwrap(); // header+table still fine
        let mut buf = [0u8; PAGE_SIZE];
        store.read_page(0, &mut buf).unwrap(); // untouched page still reads
        assert!(matches!(
            store.read_page(1, &mut buf),
            Err(StoreError::PageChecksum { page: 1 })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn filestore_detects_header_corruption() {
        let path = tmp("badheader");
        FileStore::create(&path, 0, [0; 4], &sample_pages(2)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[20] ^= 0x01; // root page field
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            FileStore::open(&path),
            Err(StoreError::HeaderChecksum)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn filestore_rejects_future_version() {
        let path = tmp("version");
        FileStore::create(&path, 0, [0; 4], &sample_pages(2)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        // Re-stamp the header checksum so only the version is "wrong".
        let crc = crc32(&bytes[0..60]);
        bytes[60..64].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            FileStore::open(&path),
            Err(StoreError::BadVersion(99))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_resave_leaves_previous_file_intact() {
        let path = tmp("atomic_resave");
        let tmp_path = tmp_sibling(&path);
        std::fs::remove_dir_all(&tmp_path).ok();
        std::fs::remove_file(&tmp_path).ok();
        let good = sample_pages(3);
        FileStore::create(&path, 1, [5; 4], &good).unwrap();

        // Simulate a save that cannot complete: a directory squats on
        // the staging path, so the temp file can't even be opened.
        std::fs::create_dir(&tmp_path).unwrap();
        assert!(FileStore::create(&path, 0, [9; 4], &sample_pages(8)).is_err());
        std::fs::remove_dir_all(&tmp_path).unwrap();

        // The original save is untouched and fully readable.
        let store = FileStore::open(&path).unwrap();
        assert_eq!(store.meta().page_count, 3);
        assert_eq!(store.meta().root_page, 1);
        assert_eq!(store.meta().user, [5; 4]);
        let mut buf = [0u8; PAGE_SIZE];
        for (i, want) in good.iter().enumerate() {
            store.read_page(i as u32, &mut buf).unwrap();
            assert_eq!(buf[..], want[..], "page {i}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn create_never_stages_in_the_target_path() {
        // While `create` is mid-write, the *target* must hold either
        // nothing or the complete previous file — verified here by
        // checking the staged temp name is a sibling, not the target,
        // and that no temp residue survives a successful save.
        let path = tmp("atomic_fresh");
        let staged = tmp_sibling(&path);
        assert_ne!(staged, path);
        assert_eq!(
            staged.file_name().unwrap().to_string_lossy(),
            format!("{}.tmp", path.file_name().unwrap().to_string_lossy())
        );
        FileStore::create(&path, 0, [0; 4], &sample_pages(2)).unwrap();
        assert!(path.exists());
        assert!(!staged.exists(), "no temp residue after a clean save");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stray_temp_file_is_cleaned_on_open() {
        let path = tmp("stray_tmp");
        FileStore::create(&path, 0, [0; 4], &sample_pages(2)).unwrap();
        // A crashed writer left a half-written staging file behind.
        let stray = tmp_sibling(&path);
        std::fs::write(&stray, b"half-written wreckage").unwrap();
        let store = FileStore::open(&path).unwrap();
        assert_eq!(store.meta().page_count, 2);
        assert!(!stray.exists(), "open cleans the stray staging file");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rename_keeps_open_handle_valid() {
        // `create` returns a store backed by the handle it staged with;
        // after the rename (and even after unlinking the file) reads
        // must keep working through that handle.
        let path = tmp("handle_valid");
        let pages = sample_pages(4);
        let store = FileStore::create(&path, 0, [0; 4], &pages).unwrap();
        std::fs::remove_file(&path).unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        for (i, want) in pages.iter().enumerate() {
            store.read_page(i as u32, &mut buf).unwrap();
            assert_eq!(buf[..], want[..], "page {i}");
        }
    }

    #[test]
    fn uncounted_reads_do_not_move_the_counter() {
        let store = MemStore::new(sample_pages(2), 0, [0; 4]).unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        store.read_page_uncounted(0, &mut buf).unwrap();
        store.read_page_uncounted(1, &mut buf).unwrap();
        assert_eq!(store.physical_reads(), 0);
        store.read_page(0, &mut buf).unwrap();
        assert_eq!(store.physical_reads(), 1);

        let path = tmp("uncounted");
        let fstore = FileStore::create(&path, 0, [0; 4], &sample_pages(2)).unwrap();
        fstore.read_page_uncounted(1, &mut buf).unwrap();
        assert_eq!(fstore.physical_reads(), 0);
        fstore.read_page(1, &mut buf).unwrap();
        assert_eq!(fstore.physical_reads(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_reads_match_single_page_reads_and_stay_uncounted() {
        let pages = sample_pages(6);
        let mem = MemStore::new(pages.clone(), 0, [0; 4]).unwrap();
        let path = tmp("run_read");
        let fstore = FileStore::create(&path, 0, [0; 4], &pages).unwrap();
        for store in [&mem as &dyn PageStore, &fstore as &dyn PageStore] {
            let mut buf = vec![0u8; 3 * PAGE_SIZE];
            store.read_run_uncounted(2, &mut buf).unwrap();
            for i in 0..3 {
                assert_eq!(
                    buf[i * PAGE_SIZE..(i + 1) * PAGE_SIZE],
                    pages[2 + i][..],
                    "run page {i}"
                );
            }
            assert_eq!(store.physical_reads(), 0, "run reads are uncounted");
            // A run past the end is rejected, not truncated.
            assert!(matches!(
                store.read_run_uncounted(4, &mut buf),
                Err(StoreError::PageOutOfRange { .. })
            ));
        }
        // A corrupt page inside a run is still caught by its checksum.
        drop(fstore);
        let mut bytes = std::fs::read(&path).unwrap();
        let data_offset = PAGE_SIZE as u64 + table_bytes(6);
        bytes[data_offset as usize + 3 * PAGE_SIZE + 17] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let fstore = FileStore::open(&path).unwrap();
        let mut buf = vec![0u8; 3 * PAGE_SIZE];
        assert!(matches!(
            fstore.read_run_uncounted(2, &mut buf),
            Err(StoreError::PageChecksum { page: 3 })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lock_blocks_writer_while_reader_is_open() {
        let path = tmp("lock_writer_out");
        FileStore::create(&path, 0, [0; 4], &sample_pages(2)).unwrap();
        let reader = FileStore::open(&path).unwrap();
        // A second writer must not rewrite pages under the open reader.
        assert!(matches!(
            FileStore::create(&path, 0, [0; 4], &sample_pages(3)),
            Err(StoreError::Locked { .. })
        ));
        // The reader is fully usable throughout.
        let mut buf = [0u8; PAGE_SIZE];
        reader.read_page(1, &mut buf).unwrap();
        assert_eq!(buf[..], sample_pages(2)[1][..]);
        drop(reader);
        // Lock released with the reader: the rewrite now goes through.
        let store = FileStore::create(&path, 0, [0; 4], &sample_pages(3)).unwrap();
        assert_eq!(store.meta().page_count, 3);
        drop(store);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lock_blocks_reader_while_writer_holds_the_file() {
        let path = tmp("lock_reader_out");
        let writer = FileStore::create(&path, 0, [0; 4], &sample_pages(2)).unwrap();
        // A reader opening mid-write (the writer's store is still live)
        // is refused rather than handed a file that may be rewritten.
        assert!(matches!(
            FileStore::open(&path),
            Err(StoreError::Locked { .. })
        ));
        drop(writer);
        let reader = FileStore::open(&path).unwrap();
        assert_eq!(reader.meta().page_count, 2);
        drop(reader);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stale_lock_from_dead_process_is_reclaimed() {
        let path = tmp("lock_stale");
        FileStore::create(&path, 0, [0; 4], &sample_pages(2)).unwrap();
        // Forge a lock owned by an impossible pid (Linux pid_max is far
        // below u32::MAX), as a crashed holder would leave behind.
        std::fs::write(lock_sibling(&path), u32::MAX.to_string()).unwrap();
        if Path::new("/proc/self").exists() {
            let store = FileStore::open(&path).expect("stale lock reclaimed");
            assert_eq!(store.meta().page_count, 2);
            drop(store);
        } else {
            // Without /proc there is no liveness oracle: stay locked.
            assert!(matches!(
                FileStore::open(&path),
                Err(StoreError::Locked { .. })
            ));
            std::fs::remove_file(lock_sibling(&path)).ok();
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_create_releases_the_lock() {
        let path = tmp("lock_failed_create");
        let tmp_path = tmp_sibling(&path);
        std::fs::remove_dir_all(&tmp_path).ok();
        // Make the staging write fail: a directory squats on the path.
        std::fs::create_dir(&tmp_path).unwrap();
        assert!(FileStore::create(&path, 0, [0; 4], &sample_pages(2)).is_err());
        std::fs::remove_dir_all(&tmp_path).unwrap();
        assert!(
            !lock_sibling(&path).exists(),
            "a failed create must not leave the path locked"
        );
        FileStore::create(&path, 0, [0; 4], &sample_pages(2)).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn arc_handle_is_a_store() {
        let shared = Arc::new(MemStore::new(sample_pages(2), 0, [0; 4]).unwrap());
        let handle: Arc<MemStore> = Arc::clone(&shared);
        let mut buf = [0u8; PAGE_SIZE];
        handle.read_page(1, &mut buf).unwrap();
        assert_eq!(buf[..], sample_pages(2)[1][..]);
        assert_eq!(shared.physical_reads(), 1, "counters shared across clones");
        let mut run = vec![0u8; 2 * PAGE_SIZE];
        handle.read_run_uncounted(0, &mut run).unwrap();
        assert_eq!(shared.physical_reads(), 1);
    }

    #[test]
    fn table_padding_is_page_aligned() {
        assert_eq!(table_bytes(1), PAGE_SIZE as u64);
        assert_eq!(table_bytes(1024), PAGE_SIZE as u64);
        assert_eq!(table_bytes(1025), 2 * PAGE_SIZE as u64);
    }
}
