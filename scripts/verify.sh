#!/usr/bin/env bash
# Repo verification gate: tier-1 build+test, lint wall, throughput smoke.
#
#   scripts/verify.sh          # full gate (~a few minutes on 1 core)
#   SKIP_SMOKE=1 scripts/verify.sh   # build+test+clippy only
#
# Everything runs offline; see README § Offline builds.
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n==> %s\n' "$*"; }

step "tier-1: cargo build --release"
cargo build --release

step "tier-1: cargo test -q"
cargo test -q

step "lint: cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

# The disk query read path must stay panic-free: every failure routes
# through TreeError::Io / QueryError::Io (tests below the #[cfg(test)]
# marker are exempt; the infallible wrappers in tree.rs are the one
# deliberate panic site and are not query-read-path code). The I/O
# executor is held to the same bar: its completion threads must never
# unwind (a panicking worker would strand in-flight pages forever).
# The serving layer joins the list: a panicking worker or reader thread
# would silently strand client connections, so every serve source file
# must route failures through typed responses instead. node.rs joins
# too: its kind accessors sit under every disk read, so a decode bug
# must degrade (debug assertion + empty view) rather than panic. The
# scatter-gather planner joins too: a panicking shard worker would
# poison the shared kNWC core and strand the gather, so shard.rs is
# try_-only outside tests (missing structures degrade, partial shard
# failures surface as typed ShardScatterError). The anytime layer joins
# too: cancel.rs sits under every budget check on the hot descent, and
# anytime.rs computes the bounds a partial answer's soundness rests on
# — a panic there would turn graceful degradation into a crash.
step "lint: no panic paths in the disk query read path"
for f in crates/rtree/src/disk.rs crates/rtree/src/browser.rs \
         crates/rtree/src/query.rs crates/rtree/src/iwp.rs \
         crates/rtree/src/node.rs crates/rtree/src/cancel.rs \
         crates/store/src/executor.rs \
         crates/core/src/shard.rs crates/core/src/anytime.rs \
         crates/serve/src/protocol.rs crates/serve/src/histogram.rs \
         crates/serve/src/handle.rs crates/serve/src/server.rs \
         crates/serve/src/client.rs; do
  if sed '/#\[cfg(test)\]/,$d' "$f" | grep -nE 'panic!|unwrap\(\)|\.expect\(|unreachable!'; then
    echo "error: panic-capable call in non-test section of $f" >&2
    exit 1
  fi
done
echo "ok: disk query read path is panic-free outside tests"

if [[ "${SKIP_SMOKE:-0}" != "1" ]]; then
  step "smoke: throughput experiment (tiny scale)"
  NWC_SCALE=0.02 NWC_QUERIES=3 cargo run --release -p nwc-bench -- throughput
  test -s results/BENCH_throughput.json
  echo "ok: results/BENCH_throughput.json written"

  step "smoke: disk mode (persist, reopen, buffer sweep)"
  cargo run --release --example persist_and_query
  NWC_SCALE=0.02 NWC_QUERIES=3 cargo run --release -p nwc-bench -- buffer
  test -s results/BENCH_buffer.json
  grep -q '"peak_resident_nodes"' results/BENCH_buffer.json
  echo "ok: results/BENCH_buffer.json written (with resident-node gauge)"

  step "smoke: readahead + clustered layout (sweep covers both, counters present)"
  grep -q '"layout": "clustered"' results/BENCH_buffer.json
  grep -q '"prefetch_batches"' results/BENCH_buffer.json
  echo "ok: layout/readahead cells recorded in the sweep"

  step "smoke: demand paging (tiny pool, answers match arena)"
  cargo test -q --release --test demand_paging
  echo "ok: pool capacity bounds resident decoded nodes"

  step "smoke: sharded pool under concurrent batches"
  cargo test -q --release --test pool_stress
  echo "ok: concurrent accounting exact across shards and readahead"

  step "smoke: chaos (fault injection, typed errors, recovery)"
  cargo test -q --release --test chaos
  echo "ok: transient faults invisible, permanent faults typed and recoverable"

  step "smoke: chaos under the overlapped I/O backend (io_threads > 0)"
  cargo test -q --release --test chaos overlapped_io
  cargo test -q --release --test disk_equivalence overlapped_io
  echo "ok: overlapped readahead bit-identical under faults and fault-free"

  step "smoke: fault-injection sweep (tiny scale)"
  NWC_SCALE=0.02 NWC_QUERIES=3 cargo run --release -p nwc-bench -- faults
  test -s results/BENCH_faults.json
  grep -q '"prefetch_errors"' results/BENCH_faults.json
  echo "ok: results/BENCH_faults.json written (with retry/readahead-error counters)"

  step "smoke: kernel + overlapped-I/O sweep (tiny scale)"
  cargo test -q --release --test kernel_equivalence
  NWC_SCALE=0.02 NWC_QUERIES=3 cargo run --release -p nwc-bench -- kernels
  test -s results/BENCH_kernels.json
  grep -q '"backend"' results/BENCH_kernels.json
  grep -q '"overlap_us"' results/BENCH_kernels.json
  echo "ok: results/BENCH_kernels.json written (backend + overlap counters)"

  step "smoke: serving layer (concurrent clients, deadlines, hot-swap)"
  cargo run --release --bin nwc-serve -- --self-test
  cargo test -q --release --test serve_swap
  echo "ok: serve self-test and hot-swap suite passed"

  step "smoke: serve load sweep (tiny scale)"
  NWC_SCALE=0.02 NWC_QUERIES=3 cargo run --release -p nwc-bench -- serve
  test -s results/BENCH_serve.json
  grep -q '"capacity_qps"' results/BENCH_serve.json
  grep -q '"p999_us"' results/BENCH_serve.json
  echo "ok: results/BENCH_serve.json written (capacity + tail latency)"

  step "smoke: writable disk mode (mutate, commit, reopen ≡ arena)"
  cargo test -q --release --test disk_equivalence writable
  cargo test -q --release --test crash
  echo "ok: mutate-save-reopen equivalence and crash kill-point matrix passed"

  step "smoke: streaming ingest sweep (tiny scale)"
  NWC_SCALE=0.02 NWC_QUERIES=3 cargo run --release -p nwc-bench -- ingest
  test -s results/BENCH_ingest.json
  grep -q '"ingest_per_s"' results/BENCH_ingest.json
  grep -q '"reopen_ms"' results/BENCH_ingest.json
  echo "ok: results/BENCH_ingest.json written (throughput + recovery time)"

  step "smoke: sharded scatter-gather (oracle equivalence, faults, disk dirs)"
  cargo test -q --release --test shard_equivalence
  NWC_SCALE=0.02 NWC_QUERIES=3 cargo run --release -p nwc-bench -- shard
  test -s results/BENCH_shard.json
  grep -q '"pool_split"' results/BENCH_shard.json
  grep -q '"io_ratio_vs_unsharded"' results/BENCH_shard.json
  grep -q '"cores"' results/BENCH_shard.json
  echo "ok: results/BENCH_shard.json written (split + I/O ratio + core honesty)"

  step "smoke: anytime/approximate sweep (tiny scale)"
  NWC_SCALE=0.02 NWC_QUERIES=3 cargo run --release -p nwc-bench -- approx
  test -s results/BENCH_approx.json
  grep -q '"exact_recall": 1' results/BENCH_approx.json
  grep -q '"bound_violations": 0' results/BENCH_approx.json
  echo "ok: results/BENCH_approx.json written (exact mode bit-identical, bounds sound)"
fi

step "verify: all checks passed"
