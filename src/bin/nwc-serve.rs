//! `nwc-serve` — the NWC query service.
//!
//! ```text
//! nwc-serve serve <pages-file> [addr] [workers] [queue-depth] [default-deadline-ms]
//! nwc-serve --self-test
//! ```
//!
//! `serve` opens a page file written by `NwcIndex::save_tree` and
//! serves the binary protocol (see `nwc-serve`'s crate docs) until a
//! client sends `Shutdown` or the process is killed. A running server
//! hot-swaps to a new page file when a client sends `Swap(path)`.
//!
//! `--self-test` is the end-to-end smoke used by `scripts/verify.sh`:
//! it builds two small datasets, saves them as two page-file
//! generations, starts a server on an ephemeral port, fires a few
//! hundred concurrent NWC/kNWC queries with mixed deadlines, hot-swaps
//! to the second generation mid-load, and exits non-zero unless every
//! request resolved to a typed outcome (answer, deadline, shed, or
//! stopped — never a protocol error, a worker loss, or a pin leak).

use nwc_core::{DiskIndexConfig, Scheme};
use nwc_datagen::Dataset;
use nwc_serve::{IndexHandle, QueryOutcome, ServeClient, Server, ServerConfig};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("--self-test") => self_test(),
        _ => {
            println!("nwc-serve — NWC query service over a saved page file\n");
            println!("  nwc-serve serve <pages-file> [addr] [workers] [queue] [deadline-ms]");
            println!("  nwc-serve --self-test");
            println!("\ndefaults: addr 127.0.0.1:7171, workers 4, queue 128, no default deadline");
            Ok(())
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn parse<T: std::str::FromStr>(args: &[String], i: usize, what: &str) -> Result<Option<T>, String> {
    match args.get(i) {
        None => Ok(None),
        Some(s) => s
            .parse()
            .map(Some)
            .map_err(|_| format!("cannot parse {what}: {s}")),
    }
}

fn serve(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing <pages-file>")?;
    let addr = args.get(1).cloned().unwrap_or_else(|| "127.0.0.1:7171".to_string());
    let mut config = ServerConfig {
        // The CLI's documented workflow includes wire-driven hot-swap
        // and shutdown, so the control plane is on — which means any
        // client that can reach the port can swap the index or stop
        // the process. Bind a loopback/trusted address accordingly.
        allow_control_plane: true,
        ..ServerConfig::default()
    };
    if let Some(workers) = parse(args, 2, "workers")? {
        config.workers = workers;
    }
    if let Some(queue) = parse(args, 3, "queue depth")? {
        config.queue_depth = queue;
    }
    if let Some(ms) = parse::<u64>(args, 4, "deadline-ms")? {
        config.default_deadline = Some(Duration::from_millis(ms));
    }
    let index = nwc_core::NwcIndex::open_disk(path, config.swap_config)
        .map_err(|e| format!("opening {path}: {e}"))?;
    let handle = Arc::new(IndexHandle::new(index));
    let server =
        Server::start(handle, &addr, config).map_err(|e| format!("binding {addr}: {e}"))?;
    println!(
        "serving {path} on {} ({} workers); send Shutdown to stop \
         (control plane open: any client may Swap/Shutdown)",
        server.local_addr(),
        config.workers
    );
    // Runs until a client sends the Shutdown opcode: park this thread
    // by re-joining the server (shutdown() blocks on the worker pool,
    // which only exits once the stop flag rises).
    server.shutdown_when_stopped();
    println!("server stopped");
    Ok(())
}

// ---------------------------------------------------------------------
// Self-test
// ---------------------------------------------------------------------

/// Per-thread tally of typed outcomes.
#[derive(Clone, Copy, Debug, Default)]
struct Tally {
    answers: usize,
    empty: usize,
    deadline: usize,
    shed: usize,
    stopped: usize,
    bad: usize,
}

fn self_test() -> Result<(), String> {
    let dir = std::env::temp_dir().join(format!("nwc-serve-selftest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
    let result = self_test_in(&dir);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn self_test_in(dir: &std::path::Path) -> Result<(), String> {
    // Two generations: same space, different points, so answers differ
    // but every query is valid against either.
    let gen1 = dir.join("gen1.pages");
    let gen2 = dir.join("gen2.pages");
    for (path, seed) in [(&gen1, 1u64), (&gen2, 2u64)] {
        let dataset = Dataset::uniform(20_000, seed);
        nwc_core::NwcIndex::build(dataset.points)
            .save_tree(path)
            .map_err(|e| format!("saving {}: {e}", path.display()))?;
    }

    let config = ServerConfig {
        workers: 4,
        queue_depth: 256,
        max_estimated_wait: Duration::from_secs(2),
        default_deadline: Some(Duration::from_secs(5)),
        swap_config: DiskIndexConfig::default(),
        allow_control_plane: true,
        shed_degrade_epsilon: None,
    };
    let index = nwc_core::NwcIndex::open_disk(&gen1, config.swap_config)
        .map_err(|e| format!("opening generation 1: {e}"))?;
    let server = Server::start(Arc::new(IndexHandle::new(index)), "127.0.0.1:0", config)
        .map_err(|e| format!("starting server: {e}"))?;
    let addr = server.local_addr();

    // 4 client threads × 100 mixed queries, a third with deliberately
    // tight (1 ms) deadlines to exercise the typed Deadline path.
    const THREADS: usize = 4;
    const PER_THREAD: usize = 100;
    let mut tallies: Vec<Result<Tally, String>> = Vec::new();
    let mut swap = Err("swap never ran".to_string());
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for t in 0..THREADS {
            joins.push(scope.spawn(move || client_load(addr, t)));
        }
        // Hot-swap mid-load from the main thread.
        std::thread::sleep(Duration::from_millis(30));
        swap = run_swap(addr, &gen2);
        for j in joins {
            tallies.push(j.join().unwrap_or_else(|_| Err("client thread panicked".into())));
        }
    });

    let swap = swap?;
    if swap.old_generation != 1 || swap.new_generation != 2 {
        return Err(format!("unexpected swap generations: {swap:?}"));
    }
    if swap.old_pinned != 0 {
        return Err(format!("pin leak across hot-swap: {} frames", swap.old_pinned));
    }

    let mut total = Tally::default();
    for t in tallies {
        let t = t?;
        total.answers += t.answers;
        total.empty += t.empty;
        total.deadline += t.deadline;
        total.shed += t.shed;
        total.stopped += t.stopped;
        total.bad += t.bad;
    }
    let sum = total.answers + total.empty + total.deadline + total.shed + total.stopped;
    if total.bad != 0 || sum != THREADS * PER_THREAD {
        return Err(format!("untyped or missing outcomes: {total:?}"));
    }
    if total.answers == 0 {
        return Err("no query produced an answer".to_string());
    }

    // The scrape must reflect the flip and the served load.
    let mut client =
        ServeClient::connect(addr).map_err(|e| format!("connecting for stats: {e}"))?;
    let stats = client.stats().map_err(|e| format!("stats scrape: {e}"))?;
    for needle in ["server_generation 2", "server_swaps_total 1", "latency_count"] {
        if !stats.contains(needle) {
            return Err(format!("stats scrape is missing `{needle}`:\n{stats}"));
        }
    }
    client.shutdown().map_err(|e| format!("shutdown request: {e}"))?;
    server.shutdown();
    println!(
        "self-test ok: {} answers, {} empty, {} deadline, {} shed, {} stopped across {} queries; \
         swap 1→2 drained={} in {} µs",
        total.answers,
        total.empty,
        total.deadline,
        total.shed,
        total.stopped,
        THREADS * PER_THREAD,
        swap.drained,
        swap.drain_us,
    );
    Ok(())
}

fn client_load(addr: std::net::SocketAddr, thread: usize) -> Result<Tally, String> {
    let mut client = ServeClient::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let queries = Dataset::query_points(100, 42 + thread as u64);
    let mut tally = Tally::default();
    for (i, q) in queries.iter().enumerate() {
        // Tight deadlines on every third query; generous otherwise.
        let deadline_ms = if i % 3 == 0 { 1 } else { 2_000 };
        let outcome = if i % 4 == 0 {
            client.knwc(Scheme::NWC_PLUS, q.x, q.y, 400.0, 400.0, 4, 3, 1, deadline_ms)
        } else {
            client.nwc(Scheme::NWC_STAR, q.x, q.y, 400.0, 400.0, 6, deadline_ms)
        };
        match outcome.map_err(|e| format!("query {i}: {e}"))? {
            QueryOutcome::Answer { groups, .. } if groups.is_empty() => tally.empty += 1,
            QueryOutcome::Answer { .. } => tally.answers += 1,
            QueryOutcome::Deadline | QueryOutcome::Partial { .. } => tally.deadline += 1,
            QueryOutcome::Shed { .. } => tally.shed += 1,
            QueryOutcome::Stopped => tally.stopped += 1,
            QueryOutcome::BadRequest(_) | QueryOutcome::IoFailed(_) => tally.bad += 1,
        }
    }
    Ok(tally)
}

fn run_swap(
    addr: std::net::SocketAddr,
    gen2: &std::path::Path,
) -> Result<nwc_serve::SwapOutcome, String> {
    let mut client = ServeClient::connect(addr).map_err(|e| format!("swap connect: {e}"))?;
    client
        .swap(&gen2.display().to_string())
        .map_err(|e| format!("swap request: {e}"))?
        .map_err(|msg| format!("server refused swap: {msg}"))
}
