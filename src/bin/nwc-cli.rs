//! `nwc-cli` — command-line front end for the library.
//!
//! ```text
//! nwc-cli gen <uniform|gaussian|ca|ny> <count> <out.csv> [seed]
//! nwc-cli query <data.csv> <qx> <qy> <window> <n> [scheme] [measure]
//! nwc-cli knwc  <data.csv> <qx> <qy> <window> <n> <k> <m> [scheme]
//! nwc-cli maxrs <data.csv> <window>
//! nwc-cli stats <data.csv>
//! ```
//!
//! Datasets are plain `x,y` CSV files (see `nwc::datagen`). Schemes:
//! nwc, srr, dip, dep, iwp, nwc+, nwc* (default). Measures: min, max
//! (default), avg, nearest.

use nwc::core::{maxrs::maxrs, DistanceMeasure, KnwcQuery};
use nwc::geom::window::WindowSpec as Spec;
use nwc::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run `nwc-cli` with no arguments for usage");
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    println!("nwc-cli — Nearest Window Cluster queries from the command line\n");
    println!("  nwc-cli gen <uniform|gaussian|ca|ny> <count> <out.csv> [seed]");
    println!("  nwc-cli query <data.csv> <qx> <qy> <window> <n> [scheme] [measure]");
    println!("  nwc-cli knwc  <data.csv> <qx> <qy> <window> <n> <k> <m> [scheme]");
    println!("  nwc-cli maxrs <data.csv> <window>");
    println!("  nwc-cli stats <data.csv>");
    println!("\nschemes: nwc srr dip dep iwp nwc+ nwc* (default nwc*)");
    println!("measures: min max avg nearest (default max)");
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        usage();
        return Ok(());
    };
    match cmd.as_str() {
        "gen" => gen(&args[1..]),
        "query" => query(&args[1..]),
        "knwc" => knwc(&args[1..]),
        "maxrs" => maxrs_cmd(&args[1..]),
        "stats" => stats(&args[1..]),
        "help" | "--help" | "-h" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("cannot parse {what}: `{s}`"))
}

fn parse_scheme(s: Option<&String>) -> Result<Scheme, String> {
    match s.map(|v| v.to_lowercase()).as_deref() {
        None | Some("nwc*") | Some("star") => Ok(Scheme::NWC_STAR),
        Some("nwc") => Ok(Scheme::NWC),
        Some("srr") => Ok(Scheme::SRR),
        Some("dip") => Ok(Scheme::DIP),
        Some("dep") => Ok(Scheme::DEP),
        Some("iwp") => Ok(Scheme::IWP),
        Some("nwc+") | Some("plus") => Ok(Scheme::NWC_PLUS),
        Some(other) => Err(format!("unknown scheme `{other}`")),
    }
}

fn parse_measure(s: Option<&String>) -> Result<DistanceMeasure, String> {
    match s.map(|v| v.to_lowercase()).as_deref() {
        None | Some("max") => Ok(DistanceMeasure::Max),
        Some("min") => Ok(DistanceMeasure::Min),
        Some("avg") => Ok(DistanceMeasure::Avg),
        Some("nearest") | Some("nw") => Ok(DistanceMeasure::NearestWindow),
        Some(other) => Err(format!("unknown measure `{other}`")),
    }
}

fn load(path: &str) -> Result<Dataset, String> {
    Dataset::load_csv("cli", path).map_err(|e| format!("reading {path}: {e}"))
}

fn gen(args: &[String]) -> Result<(), String> {
    let [kind, count, out] = args.get(..3).ok_or("gen needs <kind> <count> <out.csv>")? else {
        return Err("gen needs <kind> <count> <out.csv>".into());
    };
    let count: usize = parse(count, "count")?;
    let seed: u64 = args.get(3).map(|s| parse(s, "seed")).transpose()?.unwrap_or(2016);
    let ds = match kind.as_str() {
        "uniform" => Dataset::uniform(count, seed),
        "gaussian" => Dataset::gaussian(count, 5_000.0, 2_000.0, seed),
        "ca" => Dataset::corridor_clustered(count, 60, 25.0, 120.0, 0.20, seed),
        "ny" => Dataset::clustered(count, 300, 8.0, 40.0, 0.05, seed),
        other => return Err(format!("unknown dataset kind `{other}`")),
    };
    ds.save_csv(out).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {} points to {out}", ds.len());
    Ok(())
}

fn query(args: &[String]) -> Result<(), String> {
    if args.len() < 5 {
        return Err("query needs <data.csv> <qx> <qy> <window> <n>".into());
    }
    let ds = load(&args[0])?;
    let q = Point::new(parse(&args[1], "qx")?, parse(&args[2], "qy")?);
    let window: f64 = parse(&args[3], "window")?;
    let n: usize = parse(&args[4], "n")?;
    let scheme = parse_scheme(args.get(5))?;
    let measure = parse_measure(args.get(6))?;

    let index = NwcIndex::build(ds.points.clone());
    let query = NwcQuery::try_new(q, Spec::square(window), n, measure)
        .map_err(|e| e.to_string())?;
    let t0 = std::time::Instant::now();
    match index.nwc(&query, scheme) {
        Some(r) => {
            println!(
                "NWC({q}, {window}x{window}, n={n}) [{scheme}] → distance {:.2}",
                r.distance
            );
            for e in &r.objects {
                println!("  #{:<6} {}  (dist {:.2})", e.id, e.point, e.point.dist(&q));
            }
            println!(
                "window {:?}; {} node accesses, {} window queries, {:.1} ms",
                r.window,
                r.stats.io_total,
                r.stats.window_queries,
                t0.elapsed().as_secs_f64() * 1e3
            );
        }
        None => println!("no {window}x{window} window holds {n} objects"),
    }
    Ok(())
}

fn knwc(args: &[String]) -> Result<(), String> {
    if args.len() < 7 {
        return Err("knwc needs <data.csv> <qx> <qy> <window> <n> <k> <m>".into());
    }
    let ds = load(&args[0])?;
    let q = Point::new(parse(&args[1], "qx")?, parse(&args[2], "qy")?);
    let window: f64 = parse(&args[3], "window")?;
    let n: usize = parse(&args[4], "n")?;
    let k: usize = parse(&args[5], "k")?;
    let m: usize = parse(&args[6], "m")?;
    let scheme = parse_scheme(args.get(7))?;

    let index = NwcIndex::build(ds.points.clone());
    let query = KnwcQuery::try_new(q, Spec::square(window), n, k, m, DistanceMeasure::Max)
        .map_err(|e| e.to_string())?;
    let r = index.knwc(&query, scheme);
    println!(
        "kNWC(k={k}, n={n}, m={m}) [{scheme}] → {} groups, {} node accesses",
        r.groups.len(),
        r.stats.io_total
    );
    for (i, g) in r.groups.iter().enumerate() {
        println!(
            "  #{i}: distance {:.2}, objects {:?}",
            g.distance,
            g.id_set()
        );
    }
    Ok(())
}

fn maxrs_cmd(args: &[String]) -> Result<(), String> {
    if args.len() < 2 {
        return Err("maxrs needs <data.csv> <window>".into());
    }
    let ds = load(&args[0])?;
    let window: f64 = parse(&args[1], "window")?;
    let r = maxrs(&ds.points, &WindowSpec::square(window)).ok_or("empty dataset")?;
    println!(
        "MaxRS({window}x{window}) → {} objects in window {:?}",
        r.count, r.window
    );
    Ok(())
}

fn stats(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("stats needs <data.csv>")?;
    let ds = load(path)?;
    let index = NwcIndex::build(ds.points.clone());
    let tree = index.tree();
    println!("objects:      {}", index.len());
    println!("bounds:       {:?}", index.bounds());
    println!("tree height:  {}", tree.height());
    println!("tree nodes:   {}", tree.node_count());
    let file = tree.to_page_file();
    println!(
        "page file:    {} pages = {} KB (4096-byte pages)",
        file.page_count(),
        file.bytes() / 1024
    );
    if let Some(grid) = index.grid() {
        println!(
            "density grid: {}x{} cells, {} KB",
            grid.cells_per_side(),
            grid.cells_per_side(),
            grid.bytes() / 1024
        );
    }
    if let Some(iwp) = index.iwp() {
        let s = iwp.storage();
        println!(
            "IWP pointers: {} backward + {} overlapping = {} KB",
            s.backward_pointers,
            s.overlapping_pointers,
            s.bytes() / 1024
        );
    }
    Ok(())
}
