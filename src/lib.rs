//! # nwc — Nearest Window Cluster queries
//!
//! A production-quality Rust reproduction of *"Nearest Window Cluster
//! Queries"* (Huang, Huang, Liang, Wang, Shih, Lee — EDBT 2016).
//!
//! Given a query point `q`, a window of length `l` and width `w`, and a
//! count `n`, an **NWC query** returns the `n` data objects that fit in
//! some `l × w` axis-aligned window and minimize a distance measure to
//! `q`. The **kNWC** extension returns `k` such groups with pairwise
//! overlap bounded by `m`.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! - [`geom`] — points, rectangles, quadrants, window geometry,
//! - [`rtree`] — an instrumented R\*-tree with node-access accounting and
//!   the paper's IWP pointer augmentation,
//! - [`store`] — the disk layer: page files with per-page checksums and
//!   the LRU buffer pool behind disk-backed trees,
//! - [`grid`] — the density grid behind density-based pruning,
//! - [`datagen`] — seeded dataset generators (Gaussian, CA-like, NY-like),
//! - [`core`] — the NWC/kNWC algorithms with all optimization schemes,
//! - [`analysis`] — the paper's §4 analytical I/O cost model.
//!
//! ## Quickstart
//!
//! ```
//! use nwc::prelude::*;
//!
//! // A handful of shops; Bob stands at (50, 50).
//! let shops = vec![
//!     Point::new(52.0, 55.0),
//!     Point::new(53.0, 56.0),
//!     Point::new(54.0, 54.0),
//!     Point::new(90.0, 90.0),
//! ];
//! let index = NwcIndex::build(shops);
//! let query = NwcQuery::new(Point::new(50.0, 50.0), WindowSpec::square(8.0), 3);
//! let result = index.nwc(&query, Scheme::NWC_STAR).expect("3 shops fit in a window");
//! assert_eq!(result.objects.len(), 3);
//! ```

pub use nwc_analysis as analysis;
pub use nwc_core as core;
pub use nwc_datagen as datagen;
pub use nwc_geom as geom;
pub use nwc_grid as grid;
pub use nwc_rtree as rtree;
pub use nwc_store as store;

/// One-stop imports for typical library use.
pub mod prelude {
    pub use nwc_core::weighted::{WeightedNwcIndex, WeightedQuery};
    pub use nwc_core::{
        AnytimeKnwc, AnytimeNwc, Approx, Budget, DiskIndexConfig, DistanceMeasure,
        IndexUpdateError, KnwcQuery, KnwcResult, NwcIndex, NwcQuery, NwcResult, QueryEngine,
        QueryScratch, Scheme, SearchStats, ShardedNwcIndex,
    };
    pub use nwc_datagen::Dataset;
    pub use nwc_geom::{window::WindowSpec, Point, Rect};
    pub use nwc_rtree::{PageLayout, RStarTree, TreeError};
}
