//! The serving layer end-to-end: start an `nwc-serve` server in
//! process, speak the wire protocol to it, watch a deadline fire, and
//! hot-swap the index under the client's feet.
//!
//! Everything here also works across machines — the client only needs
//! the address — but an in-process server keeps the example
//! self-contained.
//!
//! Run with: `cargo run --example serve_client`

use nwc::prelude::*;
use nwc_serve::{IndexHandle, QueryOutcome, ServeClient, Server, ServerConfig};
use std::sync::Arc;

fn main() {
    // ---- two index generations on disk -------------------------------
    let dir = std::env::temp_dir().join(format!("nwc-serve-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let gen1 = dir.join("gen1.pages");
    let gen2 = dir.join("gen2.pages");
    for (path, seed) in [(&gen1, 7u64), (&gen2, 8u64)] {
        let dataset = Dataset::uniform(10_000, seed);
        NwcIndex::build(dataset.points)
            .save_tree(path)
            .expect("saving page file");
    }

    // ---- serve generation 1 ------------------------------------------
    let config = ServerConfig {
        workers: 2,
        // Opt in to wire-driven Swap/Shutdown — off by default because
        // those opcodes carry no authentication.
        allow_control_plane: true,
        ..ServerConfig::default()
    };
    let index = NwcIndex::open_disk(&gen1, config.swap_config).expect("opening generation 1");
    let server = Server::start(Arc::new(IndexHandle::new(index)), "127.0.0.1:0", config)
        .expect("starting server");
    let addr = server.local_addr();
    println!("serving generation 1 on {addr}");

    // ---- the wire protocol, request by request -----------------------
    let mut client = ServeClient::connect(addr).expect("connecting");
    client.ping().expect("ping");

    // A plain NWC query under the paper's full scheme, 2 s deadline.
    match client
        .nwc(Scheme::NWC_STAR, 5_000.0, 5_000.0, 400.0, 400.0, 6, 2_000)
        .expect("nwc request")
    {
        QueryOutcome::Answer { groups, stats } => {
            let ids: Vec<u32> = groups[0].objects.iter().map(|o| o.id).collect();
            println!(
                "NWC*: group {ids:?} at distance {:.1} ({} node accesses)",
                groups[0].distance,
                stats.io_total,
            );
        }
        other => println!("NWC*: {other:?}"),
    }

    // kNWC: top-3 groups sharing at most one object.
    if let QueryOutcome::Answer { groups, .. } = client
        .knwc(Scheme::NWC_PLUS, 5_000.0, 5_000.0, 400.0, 400.0, 4, 3, 1, 2_000)
        .expect("knwc request")
    {
        println!("kNWC+: {} groups, best distance {:.1}", groups.len(), groups[0].distance);
    }

    // A 1 ms deadline on a cold index is (almost always) not enough:
    // the server answers with a typed Deadline, and the worker that ran
    // it is already serving the next request.
    match client
        .nwc(Scheme::NWC_STAR, 2_500.0, 7_500.0, 400.0, 400.0, 6, 1)
        .expect("tight-deadline request")
    {
        QueryOutcome::Deadline => println!("1 ms budget: typed Deadline response, worker intact"),
        other => println!("1 ms budget: finished anyway ({other:?})"),
    }

    // ---- zero-downtime hot-swap --------------------------------------
    let swap = client
        .swap(&gen2.display().to_string())
        .expect("swap request")
        .expect("server accepted the swap");
    println!(
        "hot-swap {} → {}: drained={} in {} µs, {} pinned frames leaked",
        swap.old_generation, swap.new_generation, swap.drained, swap.drain_us, swap.old_pinned,
    );

    // Same query, new generation, no reconnect.
    if let QueryOutcome::Answer { groups, .. } = client
        .nwc(Scheme::NWC_STAR, 5_000.0, 5_000.0, 400.0, 400.0, 6, 2_000)
        .expect("post-swap request")
    {
        println!("post-swap NWC*: best distance {:.1}", groups[0].distance);
    }

    // ---- the metrics scrape ------------------------------------------
    let stats = client.stats().expect("stats scrape");
    let interesting = ["server_generation", "server_completed_total", "latency_p99_us"];
    for line in stats.lines().filter(|l| interesting.iter().any(|k| l.starts_with(k))) {
        println!("scrape: {line}");
    }

    client.shutdown().expect("shutdown request");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    println!("server drained and stopped");
}
