//! Validates the paper's §4 analytical cost model against measurement.
//!
//! The model predicts the expected I/O of the (DIP-pruned) NWC search on
//! Poisson-distributed data from closed-form level probabilities. This
//! example measures the real NWC+ scheme on uniform data and prints the
//! model's prediction next to it for a sweep of window sizes.
//!
//! Run with: `cargo run --release --example cost_model`

use nwc::analysis::{NwcCostModel, TreeModel};
use nwc::core::SearchStats;
use nwc::prelude::*;

fn main() {
    let n_objects = 40_000;
    // Uniform data matches the model's Poisson assumption best.
    let data = Dataset::uniform(n_objects, 31);
    let index = NwcIndex::build(data.points.clone());
    let queries = Dataset::query_points(10, 3);
    let n = 8;
    let area = 10_000.0f64 * 10_000.0;

    // Effective fanout of the bulk-loaded tree (STR packs ~100%).
    let tree_model = TreeModel {
        n_objects: n_objects as f64,
        fanout: 50.0,
        area,
    };

    println!("{:>8} {:>14} {:>14} {:>8}", "window", "model I/O", "measured I/O", "ratio");
    for wsize in [64.0, 96.0, 128.0, 192.0, 256.0] {
        let model = NwcCostModel::new(n_objects, area, wsize, wsize, n);
        let predicted = model.expected_io(&tree_model);

        let mut acc = SearchStats::default();
        for &q in &queries {
            let query = NwcQuery::new(q, WindowSpec::new(wsize, wsize), n);
            let (_, stats) = index.nwc_full(&query, Scheme::NWC_PLUS);
            acc.accumulate(&stats);
        }
        let measured = acc.io_total as f64 / queries.len() as f64;
        println!(
            "{:>8.0} {:>14.0} {:>14.0} {:>8.2}",
            wsize,
            predicted,
            measured,
            predicted / measured
        );
    }
    println!("\nThe model tracks the measured cost within an order of magnitude and");
    println!("reproduces the trend (larger windows qualify sooner but cost more per");
    println!("window query) — the same fidelity the paper claims for its analysis.");
}
