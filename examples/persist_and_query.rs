//! Disk mode: bulk-load an index, persist it to a page file, reopen it
//! cold, and watch the buffer pool work.
//!
//! The page file is the paper's storage model made concrete — one
//! 4096-byte page per R*-tree node, with a checksummed header and a
//! CRC-32 per page. Reopened, every node access routes through an LRU
//! buffer pool: a miss is a physical, checksum-verified page read, a
//! hit is free. Logical I/O (the paper's metric) is identical to the
//! in-memory index either way; only the physical/hit split changes
//! with pool capacity.
//!
//! Run with: `cargo run --example persist_and_query`

use nwc::prelude::*;

fn main() {
    // A synthetic city at paper-like density.
    let dataset = Dataset::ca_like(2016);
    let n_objects = dataset.len();
    let index = NwcIndex::build(dataset.points);

    // ---- persist -----------------------------------------------------
    let path = std::env::temp_dir().join("nwc-example.pages");
    index.save_tree(&path).expect("saving the page file");
    let bytes = std::fs::metadata(&path).expect("stat").len();
    println!(
        "saved {n_objects} objects as {} ({} KiB, {} pages)",
        path.display(),
        bytes / 1024,
        bytes / 4096,
    );
    drop(index);

    // ---- reopen cold, with a pool a quarter the file's size ----------
    let pages = (bytes / 4096) as usize;
    let config = DiskIndexConfig {
        pool_capacity: Some((pages / 4).max(1)),
        ..Default::default()
    };
    let disk = NwcIndex::open_disk(&path, config).expect("reopening the page file");
    let storage = disk.tree().storage().expect("disk-backed");
    println!(
        "reopened cold: pool capacity {} of {pages} pages\n",
        storage.pool_stats().capacity,
    );

    // ---- query -------------------------------------------------------
    let q = Point::new(5_000.0, 5_000.0);
    let query = NwcQuery::new(q, WindowSpec::square(200.0), 8);
    for pass in ["cold", "warm"] {
        let before = storage.pool_stats();
        let result = disk.nwc(&query, Scheme::NWC_STAR);
        let after = storage.pool_stats();
        let (phys, hits) = (after.misses - before.misses, after.hits - before.hits);
        let logical = phys + hits;
        match &result {
            Some(r) => println!(
                "{pass} NWC*: group {:?} at distance {:.1}",
                r.ids(),
                r.distance
            ),
            None => println!("{pass} NWC*: no qualifying window"),
        }
        println!(
            "  {logical} node accesses = {phys} physical page reads + {hits} buffer hits \
             ({:.0}% hit rate)\n",
            if logical > 0 { hits as f64 / logical as f64 * 100.0 } else { 0.0 },
        );
    }

    let total = storage.pool_stats();
    println!(
        "totals: {} physical reads, {} hits, {} evictions, {} pages resident",
        total.misses, total.hits, total.evictions, total.resident,
    );
    println!(
        "peak resident decoded nodes: {} (pool capacity {} bounds memory, \
         not just pages)",
        storage.peak_resident_nodes(),
        total.capacity,
    );
    std::fs::remove_file(&path).ok();
}
