//! Visual walkthrough: render the dataset as an ASCII density map, drop
//! a query point in, and mark where the nearest window cluster landed.
//!
//! Run with: `cargo run --release --example city_map`

use nwc::prelude::*;

fn main() {
    let city = Dataset::clustered(6_000, 8, 20.0, 80.0, 0.08, 99);
    let index = NwcIndex::build(city.points.clone());

    let q = Point::new(3_000.0, 6_500.0);
    let query = NwcQuery::new(q, WindowSpec::square(120.0), 10);
    let result = index.nwc(&query, Scheme::NWC_STAR).expect("clusters exist");

    const COLS: usize = 72;
    const ROWS: usize = 30;
    let mut map: Vec<Vec<char>> = city
        .density_map(COLS, ROWS)
        .lines()
        .map(|l| l.chars().collect())
        .collect();

    let mark = |map: &mut Vec<Vec<char>>, p: &Point, glyph: char| {
        let col = ((p.x / 10_000.0) * COLS as f64).clamp(0.0, COLS as f64 - 1.0) as usize;
        // Row 0 renders the top of the space.
        let row = ROWS - 1 - ((p.y / 10_000.0) * ROWS as f64).clamp(0.0, ROWS as f64 - 1.0) as usize;
        map[row][col] = glyph;
    };
    mark(&mut map, &q, 'Q');
    mark(&mut map, &result.window.center(), 'X');

    println!("Density map (Q = you, X = nearest 10-shop window):\n");
    for row in &map {
        println!("{}", row.iter().collect::<String>());
    }
    println!(
        "\nNWC found {} shops at distance {:.0} using {} node accesses",
        result.objects.len(),
        result.distance,
        result.stats.io_total
    );
    println!(
        "Window: x ∈ [{:.0}, {:.0}], y ∈ [{:.0}, {:.0}]",
        result.window.min.x, result.window.max.x, result.window.min.y, result.window.max.y
    );
}
