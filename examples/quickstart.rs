//! Quickstart: the paper's motivating scenario at toy scale.
//!
//! Bob is at a business meeting and wants `n = 3` clothes shops close to
//! each other — a window of 8 × 8 blocks — as near to his hotel as
//! possible, so he can stroll between them comparing souvenirs.
//!
//! Run with: `cargo run --example quickstart`

use nwc::prelude::*;

fn main() {
    // A downtown with two shopping areas and a few scattered shops.
    let shops = vec![
        // A tight arcade three blocks north-east of the hotel.
        Point::new(53.0, 55.0),
        Point::new(55.0, 56.5),
        Point::new(54.0, 58.0),
        // A bigger mall, but much farther away.
        Point::new(91.0, 88.0),
        Point::new(92.5, 89.0),
        Point::new(90.0, 90.5),
        Point::new(93.0, 91.0),
        // Scattered singles that never form a cluster.
        Point::new(20.0, 80.0),
        Point::new(75.0, 20.0),
    ];

    let index = NwcIndex::build(shops);
    let hotel = Point::new(50.0, 50.0);
    let query = NwcQuery::new(hotel, WindowSpec::square(8.0), 3);

    let result = index
        .nwc(&query, Scheme::NWC_STAR)
        .expect("three clustered shops exist");

    println!("Bob's hotel is at {hotel}");
    println!(
        "Nearest window cluster of {} shops (walking radius {:.1}):",
        result.objects.len(),
        result.distance
    );
    for entry in &result.objects {
        println!(
            "  shop #{} at {}  (distance {:.1})",
            entry.id,
            entry.point,
            entry.point.dist(&hotel)
        );
    }
    println!(
        "All fit inside the {:.0} × {:.0} window {:?}",
        query.spec.l, query.spec.w, result.window
    );
    println!(
        "Search cost: {} R*-tree node accesses ({} window queries)",
        result.stats.io_total, result.stats.window_queries
    );

    // The arcade wins; the mall is a valid cluster but farther away.
    assert!(result.objects.iter().all(|e| e.point.x < 60.0));
}
