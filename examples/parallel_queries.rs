//! Concurrent query throughput: one shared index, many query threads.
//!
//! The index is immutable during querying and its I/O counters are
//! relaxed atomics, so `NwcIndex` is `Sync` — a server can answer NWC
//! requests from a thread pool over a single shared instance. This
//! example verifies answer stability under concurrency and reports the
//! aggregate throughput per thread count (speedup appears only on
//! multi-core machines, of course).
//!
//! Run with: `cargo run --release --example parallel_queries`

use nwc::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

fn main() {
    let city = Dataset::clustered(10_000, 25, 15.0, 70.0, 0.1, 7);
    let index = NwcIndex::build(city.points.clone());
    let queries = Dataset::query_points(128, 99);
    let spec = WindowSpec::square(80.0);

    // Sanity: concurrent answers must equal sequential ones.
    let reference: Vec<Option<u64>> = queries
        .iter()
        .map(|&q| {
            index
                .nwc(&NwcQuery::new(q, spec, 8), Scheme::NWC_STAR)
                .map(|r| (r.distance * 1e6) as u64)
        })
        .collect();

    let hw = std::thread::available_parallelism().map_or(4, |n| n.get());
    for threads in [1usize, 2, hw.min(8)] {
        let next = AtomicUsize::new(0);
        let mismatches = AtomicUsize::new(0);
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= queries.len() {
                        break;
                    }
                    let got = index
                        .nwc(&NwcQuery::new(queries[i], spec, 8), Scheme::NWC_STAR)
                        .map(|r| (r.distance * 1e6) as u64);
                    if got != reference[i] {
                        mismatches.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(mismatches.load(Ordering::Relaxed), 0, "answers diverged");
        println!(
            "{threads:>2} thread(s): {:>7.0} queries/s  ({} queries in {:.2}s)",
            queries.len() as f64 / secs,
            queries.len(),
            secs
        );
    }
    println!("\nShared-index concurrency verified: identical answers on every thread count.");
}
