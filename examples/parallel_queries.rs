//! Concurrent query throughput: one shared index, one `QueryEngine`.
//!
//! The index is immutable during querying and its I/O counters are
//! relaxed atomics, so `NwcIndex` is `Sync` — a server can answer NWC
//! requests from a thread pool over a single shared instance. The
//! [`QueryEngine`] packages that pattern: scoped workers pull queries
//! from an atomic cursor, each reuses one [`QueryScratch`] (the
//! zero-allocation warm path), and results come back in input order.
//!
//! This example verifies answer stability across thread counts and
//! reports the aggregate throughput per count (speedup appears only on
//! multi-core machines, of course).
//!
//! Run with: `cargo run --release --example parallel_queries`

use nwc::prelude::*;
use std::time::Instant;

fn main() {
    let city = Dataset::clustered(10_000, 25, 15.0, 70.0, 0.1, 7);
    let index = NwcIndex::build(city.points.clone());
    let spec = WindowSpec::square(80.0);
    let queries: Vec<NwcQuery> = Dataset::query_points(128, 99)
        .into_iter()
        .map(|q| NwcQuery::new(q, spec, 8))
        .collect();

    // Sequential reference through the plain (allocating) API.
    let reference: Vec<Option<u64>> = queries
        .iter()
        .map(|q| {
            index
                .nwc(q, Scheme::NWC_STAR)
                .map(|r| (r.distance * 1e6) as u64)
        })
        .collect();

    let hw = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut counts = vec![1usize, 2, hw.min(8)];
    counts.sort_unstable();
    counts.dedup();
    for threads in counts {
        let engine = QueryEngine::new(&index).with_threads(threads);
        let t0 = Instant::now();
        let batch = engine.nwc_batch(&queries, Scheme::NWC_STAR);
        let secs = t0.elapsed().as_secs_f64();

        // Batch answers (and their attributed I/O counts) must be
        // exactly what the sequential API produced.
        for (i, (result, stats)) in batch.iter().enumerate() {
            let got = result.as_ref().map(|r| (r.distance * 1e6) as u64);
            assert_eq!(got, reference[i], "answer diverged at query {i}");
            assert!(stats.io_total > 0, "missing I/O accounting at query {i}");
        }
        println!(
            "{threads:>2} thread(s): {:>7.0} queries/s  ({} queries in {:.2}s)",
            queries.len() as f64 / secs,
            queries.len(),
            secs
        );
    }
    println!("\nShared-index concurrency verified: identical answers on every thread count.");
}
