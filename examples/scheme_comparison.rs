//! Compares the I/O cost of all seven schemes of the paper's Table 3 on
//! scaled-down versions of the three evaluation datasets.
//!
//! This is a miniature of the full experiment harness
//! (`cargo run --release -p nwc-bench --bin experiments`), sized to run
//! in seconds as an example.
//!
//! Run with: `cargo run --release --example scheme_comparison`

use nwc::core::SearchStats;
use nwc::prelude::*;

fn main() {
    let datasets = Dataset::paper_trio_scaled(8_000, 12_000, 10_000, 42);
    let queries = Dataset::query_points(10, 7);
    let spec = WindowSpec::square(64.0);
    let n = 8;

    println!("NWC(q, {}x{}, n={n}), {} queries averaged\n", spec.l, spec.w, queries.len());
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "dataset", "scheme", "avg I/O", "traversal", "window I/O", "found"
    );

    for ds in &datasets {
        let index = NwcIndex::build(ds.points.clone());
        for scheme in Scheme::TABLE3 {
            let mut acc = SearchStats::default();
            let mut found = 0usize;
            for &q in &queries {
                let query = NwcQuery::new(q, spec, n);
                let (result, stats) = index.nwc_full(&query, scheme);
                acc.accumulate(&stats);
                found += usize::from(result.is_some());
            }
            let avg = |v: u64| v as f64 / queries.len() as f64;
            println!(
                "{:<10} {:>10} {:>10.0} {:>10.0} {:>12.0} {:>7}/{}",
                ds.name,
                scheme.label(),
                avg(acc.io_total),
                avg(acc.io_traversal),
                avg(acc.io_window_queries),
                found,
                queries.len()
            );
        }
        println!();
    }
    println!("Expected shape: every optimization beats the baseline; NWC* wins overall.");
}
