//! NWC vs MaxRS: why the query point matters (paper §2.2).
//!
//! MaxRS (Choi, Chung & Tao, PVLDB 2012) finds the `l × w` window
//! covering the *most* objects anywhere; NWC finds the *nearest* window
//! covering *enough* objects. This example runs both over the same city
//! and shows that MaxRS sends you downtown no matter where you are,
//! while NWC adapts to your location.
//!
//! Run with: `cargo run --release --example nwc_vs_maxrs`

use nwc::core::maxrs::maxrs;
use nwc::prelude::*;

fn main() {
    // A dominant downtown plus several neighbourhood centers.
    let mut pts = Dataset::clustered(3_000, 1, 40.0, 40.0, 0.0, 11).points; // downtown blob
    pts.extend(Dataset::clustered(2_000, 8, 25.0, 60.0, 0.05, 12).points); // neighbourhoods
    let index = NwcIndex::build(pts.clone());

    let spec = WindowSpec::square(100.0);
    let n = 12;

    let dense = maxrs(&pts, &spec).expect("non-empty");
    println!(
        "MaxRS: densest {}x{} window holds {} shops, centered at ({:.0}, {:.0})\n",
        spec.l,
        spec.w,
        dense.count,
        dense.window.center().x,
        dense.window.center().y
    );

    for (label, q) in [
        ("near downtown", dense.window.center().translate(300.0, 0.0)),
        ("far suburb", Point::new(9_000.0, 1_000.0)),
        ("opposite corner", Point::new(500.0, 9_500.0)),
    ] {
        let query = NwcQuery::new(q, spec, n);
        match index.nwc(&query, Scheme::NWC_STAR) {
            Some(r) => {
                let c = r.window.center();
                let to_nwc = q.dist(&c);
                let to_maxrs = q.dist(&dense.window.center());
                println!(
                    "{label:>16}: NWC cluster at ({:>5.0}, {:>5.0}) — {:>6.0} away \
                     (MaxRS window is {:>6.0} away)",
                    c.x, c.y, to_nwc, to_maxrs
                );
                assert!(to_nwc <= to_maxrs + 1e-6, "NWC must never be farther");
            }
            None => println!("{label:>16}: no window with {n} shops exists"),
        }
    }
    println!("\nNWC answers adapt to the query location; MaxRS is location-blind.");
}
