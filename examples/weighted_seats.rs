//! Weighted NWC: "the nearest block with at least 60 restaurant seats".
//!
//! Objects carry weights (seats); a window qualifies when its total
//! weight reaches the threshold. One big restaurant nearby can beat a
//! food court far away — something plain count-based NWC cannot express.
//!
//! Run with: `cargo run --release --example weighted_seats`

use nwc::core::weighted::{WeightedNwcIndex, WeightedQuery};
use nwc::prelude::*;

fn main() {
    // A city of restaurants: mostly small, a few large venues.
    let city = Dataset::clustered(5_000, 15, 20.0, 70.0, 0.1, 31);
    let seats: Vec<f64> = (0..city.len())
        .map(|i| match i % 17 {
            0 => 120.0,         // a big venue every 17th restaurant
            1..=4 => 40.0,      // mid-size
            _ => 12.0,          // small
        })
        .collect();
    let index = WeightedNwcIndex::build(city.points.clone(), seats.clone());

    let home = Point::new(5_000.0, 5_000.0);
    let spec = WindowSpec::square(120.0);

    for need in [60.0, 200.0, 600.0] {
        let query = WeightedQuery::new(home, spec, need);
        match index.query(&query, Scheme::NWC_STAR) {
            Some((r, total)) => {
                println!(
                    "need {need:>4.0} seats → {} venue(s), {total:>5.0} seats, distance {:>6.0}, {} node accesses",
                    r.objects.len(),
                    r.distance,
                    r.stats.io_total
                );
                for e in &r.objects {
                    println!(
                        "    venue #{:<5} {:>4.0} seats at {}",
                        e.id,
                        seats[e.id as usize],
                        e.point
                    );
                }
            }
            None => println!("need {need:>4.0} seats → no window has that many"),
        }
    }
    println!("\nHigher thresholds pull the answer toward big venues and dense blocks.");
}
