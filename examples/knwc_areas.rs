//! kNWC: retrieving several alternative shopping areas (paper §3.4).
//!
//! A user rarely wants a single suggestion — kNWC returns `k` object
//! groups ordered by distance, with at most `m` shared objects between
//! any two groups, so each group is a genuinely different "place to go".
//! This example shows how `m` trades diversity against proximity.
//!
//! Run with: `cargo run --release --example knwc_areas`

use nwc::core::KnwcQuery;
use nwc::prelude::*;

fn main() {
    // A synthetic city: shops clustered around a handful of districts.
    let city = Dataset::clustered(4_000, 12, 15.0, 60.0, 0.1, 2024);
    let index = NwcIndex::build(city.points.clone());

    let home = Point::new(5_000.0, 5_000.0);
    let spec = WindowSpec::square(80.0);
    let n = 6;
    let k = 4;

    for m in [0usize, 2, 5] {
        let query = KnwcQuery::new(home, spec, n, k, m);
        let result = index.knwc(&query, Scheme::NWC_STAR);
        println!(
            "kNWC(k={k}, n={n}, m={m}): {} groups, {} node accesses",
            result.groups.len(),
            result.stats.io_total
        );
        for (rank, group) in result.groups.iter().enumerate() {
            let center = group.window.center();
            println!(
                "  #{rank}: distance {:>7.1}, window centered at ({:>6.0}, {:>6.0}), shops {:?}",
                group.distance,
                center.x,
                center.y,
                group.id_set()
            );
        }
        // Verify the diversity contract.
        for a in 0..result.groups.len() {
            for b in a + 1..result.groups.len() {
                let ia = result.groups[a].id_set();
                let ib = result.groups[b].id_set();
                let shared = ia.iter().filter(|id| ib.binary_search(id).is_ok()).count();
                assert!(shared <= m, "groups {a},{b} share {shared} > m = {m}");
            }
        }
        println!();
    }
    println!("Larger m admits closer-but-overlapping areas; m = 0 forces disjoint districts.");
}
